"""Front-door router: one listening socket, N shard workers behind it.

Clients speak the unchanged rendezvous protocol to the router's port.
The router frame-reads exactly *one* message per connection — the opening
HELLO (or STATUS) — places the room onto a shard via consistent hashing
(:mod:`repro.cluster.placement`), replays the HELLO to the shard, and
then degrades into a transparent byte pump: every subsequent frame
(WELCOME, ROOM_READY, BROADCAST/DELIVER, DONE, ABORT) crosses the router
unparsed and uncounted.  The handshake therefore runs against the shard's
:class:`~repro.service.server.RendezvousServer` byte-for-byte as if the
client had dialled it directly — which is why per-party E1/E2 counter
books and session keys are identical to the single-process service (the
cluster parity test's claim).

Failure semantics (why clients never hang):

* placement only considers UP shards; a draining or dead shard is
  re-placed around by walking the ring's preference order — every router
  instance independently reaches the same next-best shard;
* no live shard -> typed ``BUSY("no-live-shards")`` — the client backs
  off and retries within its deadline;
* a shard dying mid-room surfaces to its clients as EOF/ABORT, which the
  client classifies as retryable (:mod:`repro.service.client`), and its
  supervision-pipe EOF removes it from placement on the same loop tick,
  so the retry lands on a surviving shard;
* drain: the draining shard's own server sheds new HELLOs with
  ``BUSY("draining")`` and aborts unfilled rooms with the retryable
  ``server-shutdown`` reason — the rejoin re-enters the router and is
  re-placed.  Re-queuing is thus client-driven: the router stays
  stateless about rooms, every room lives on exactly one shard.

Aggregated STATUS: shards push their full status snapshot with every
heartbeat; a STATUS query to the router merges the freshest snapshot of
every non-dead shard — room counts and outcome tallies summed, ``svc:*``
counters summed, histograms merged bucket-by-bucket (exact, because
summaries carry raw bucket counts) — plus the router's own
``svc-cluster:*`` counters and per-shard health lines.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import metrics
from repro.cluster.health import DEAD, HealthMonitor
from repro.cluster.placement import HashRing
from repro.cluster.shard import ShardSpec
from repro.errors import EncodingError, FrameError, ProtocolError
from repro.obs import logging as obslog
from repro.obs import spans as obs
from repro.service import framing, protocol

_log = obslog.get_logger("repro.cluster.router")

_PUMP_CHUNK = 1 << 16


@dataclass
class ClusterConfig:
    """Tunables for one router + its shard fleet."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral (read .port after start)
    shards: int = 2
    #: Virtual nodes per shard on the placement ring.
    ring_replicas: int = 64
    #: Per-shard admission ceiling (open rooms); ``None`` = unlimited.
    max_rooms_per_shard: Optional[int] = None
    heartbeat_interval: float = 0.25
    #: Mark a shard dead after this long without a heartbeat (the wedged-
    #: worker backstop; hard death is caught instantly via pipe EOF).
    stale_after: float = 2.0
    shard_start_timeout: float = 30.0
    #: How long a fresh connection may sit silent before its first frame.
    first_frame_timeout: float = 30.0
    drain_timeout: float = 5.0        # per-shard grace for active rooms
    max_frame: int = framing.DEFAULT_MAX_FRAME
    # Propagated into every ShardSpec:
    room_fill_timeout: float = 30.0
    handshake_timeout: float = 60.0
    idle_timeout: float = 60.0
    #: Per-shard deterministic token seeds (parity tests); ``None`` uses
    #: ``secrets`` everywhere.  Length must equal ``shards`` when given.
    token_seeds: Optional[List[int]] = None
    #: Enable span tracing cluster-wide: the router records placement
    #: spans and every shard ships its finished spans back over the
    #: heartbeat pipe for the merged trace (:mod:`repro.obs.telemetry`).
    trace: bool = False


class ClusterRouter:
    """The cluster front door.

    Usage::

        async with ClusterRouter(ClusterConfig(shards=2)) as router:
            ... clients connect to router.port ...

    or explicit ``await router.start()`` / ``await router.shutdown()``.
    """

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        if self.config.shards < 1:
            raise ValueError("a cluster needs at least one shard")
        seeds = self.config.token_seeds
        if seeds is not None and len(seeds) != self.config.shards:
            raise ValueError("token_seeds length must equal shards")
        self.monitor: Optional[HealthMonitor] = None
        self.ring = HashRing(replicas=self.config.ring_replicas)
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweep_task: Optional[asyncio.Task] = None
        self._splices: set = set()
        self._accepting = False
        self._started = 0.0

    # Lifecycle --------------------------------------------------------------

    def _specs(self) -> List[ShardSpec]:
        cfg = self.config
        return [
            ShardSpec(
                shard_id=i,
                host=cfg.host,
                room_fill_timeout=cfg.room_fill_timeout,
                handshake_timeout=cfg.handshake_timeout,
                idle_timeout=cfg.idle_timeout,
                drain_timeout=cfg.drain_timeout,
                max_rooms=cfg.max_rooms_per_shard,
                token_seed=(cfg.token_seeds[i]
                            if cfg.token_seeds is not None else None),
                heartbeat_interval=cfg.heartbeat_interval,
                trace=cfg.trace)
            for i in range(cfg.shards)
        ]

    async def start(self) -> "ClusterRouter":
        self.monitor = HealthMonitor(self._specs(),
                                     stale_after=self.config.stale_after)
        await self.monitor.start()
        await self.monitor.wait_up(self.config.shard_start_timeout)
        for shard_id in self.monitor.handles:
            self.ring.add(shard_id)
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        self._sweep_task = asyncio.ensure_future(self._sweep_loop())
        self._accepting = True
        self._started = time.perf_counter()
        obslog.log_event(_log, "router-start", port=self.port,
                         shards=self.config.shards)
        return self

    async def __aenter__(self) -> "ClusterRouter":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    @property
    def port(self) -> int:
        assert self._server is not None, "router not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "router not started"
        await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        self._accepting = False
        if self._sweep_task is not None:
            self._sweep_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.monitor is not None:
            await self.monitor.stop(
                drain=drain,
                drain_timeout=self.config.drain_timeout + 5.0)
        for task in list(self._splices):
            task.cancel()
        if self._splices:
            await asyncio.gather(*self._splices, return_exceptions=True)

    # Failure injection / operations -----------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one shard and remove it from placement immediately."""
        assert self.monitor is not None
        self.monitor.kill(shard_id)

    def drain_shard(self, shard_id: int) -> None:
        """Gracefully drain one shard: no new placements, active rooms get
        the drain window, unfilled rooms abort retryably."""
        assert self.monitor is not None
        self.monitor.drain(shard_id)

    async def _sweep_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.config.heartbeat_interval)
                self.monitor.sweep()
        except asyncio.CancelledError:
            pass

    # Accept path ------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """One client connection.  Every exit path writes a typed frame or
        closes cleanly — a router bug must never strand a client (the
        kill-one-shard acceptance criterion)."""
        self._splices.add(asyncio.current_task())
        metrics.bump("svc-cluster:accepts")
        try:
            try:
                blob = await asyncio.wait_for(
                    framing.read_frame(reader, self.config.max_frame),
                    self.config.first_frame_timeout)
            except (asyncio.TimeoutError, FrameError,
                    ConnectionError, OSError):
                return
            if blob is None:
                return
            try:
                message = protocol.decode_message(blob)
            except (EncodingError, ProtocolError):
                metrics.bump("svc-cluster:protocol-errors")
                await self._best_effort(
                    writer, protocol.Error(reason="malformed first frame"))
                return
            if isinstance(message, protocol.Status):
                metrics.bump("svc-cluster:status-queries")
                await self._best_effort(writer, protocol.StatusReply(
                    body=json.dumps(self.status(), sort_keys=True)))
                return
            if not isinstance(message, protocol.Hello):
                metrics.bump("svc-cluster:protocol-errors")
                await self._best_effort(writer, protocol.Error(
                    reason=f"expected HELLO, got {type(message).__name__}"))
                return
            if not self._accepting:
                metrics.bump("svc-cluster:busy-sheds")
                metrics.bump("svc-cluster:busy:draining")
                await self._best_effort(
                    writer, protocol.Busy(reason="draining"))
                return
            await self._place_and_splice(message, blob, reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass
            self._splices.discard(asyncio.current_task())

    async def _best_effort(self, writer: asyncio.StreamWriter,
                           message) -> None:
        try:
            writer.write(framing.encode_frame(
                protocol.encode_message(message)))
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _place_and_splice(self, hello: protocol.Hello, blob: bytes,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """Choose a shard for the room, replay the HELLO, then pump bytes
        both ways until either side hangs up."""
        preferred = self.ring.place(hello.room)
        tried: set = set()
        while True:
            live = {h.shard_id for h in self.monitor.live()}
            shard_id = self.ring.place(hello.room, only=live - tried)
            if shard_id is None:
                metrics.bump("svc-cluster:no-live-shards")
                metrics.bump("svc-cluster:busy-sheds")
                metrics.bump("svc-cluster:busy:no-live-shards")
                obslog.log_event(_log, "no-live-shards")
                await self._best_effort(
                    writer, protocol.Busy(reason="no-live-shards"))
                return
            handle = self.monitor.handles[shard_id]
            try:
                shard_reader, shard_writer = await asyncio.open_connection(
                    handle.spec.host, handle.port)
                break
            except OSError:
                # Died between heartbeat and dial: record it, walk on.
                tried.add(shard_id)
                self.monitor.mark_dead(handle, why="connect-refused")
        with metrics.scope(handle.spec.scope):
            metrics.bump("svc-cluster:placements")
            if shard_id != preferred:
                # The ring's primary owner was draining/dead — explicit
                # re-placement onto the next shard in preference order.
                metrics.bump("svc-cluster:replacements")
        # Placement span under the client's trace context: after a shard
        # death the rejoin's span lands in the *same* trace with
        # ``replaced=True`` — the failover is visible as one trace.
        obs.start_span("place", parent=None,
                       trace=obs.valid_trace(hello.trace),
                       shard=shard_id,
                       replaced=shard_id != preferred).end()
        obslog.log_event(_log, "placed", shard=shard_id,
                         replaced=shard_id != preferred)
        try:
            shard_writer.write(framing.encode_frame(blob))
            await shard_writer.drain()
            await asyncio.gather(
                self._pump(reader, shard_writer),
                self._pump(shard_reader, writer))
        except (ConnectionError, OSError):
            pass
        finally:
            for w in (shard_writer, writer):
                try:
                    w.close()
                except Exception:
                    pass

    @staticmethod
    async def _pump(src: asyncio.StreamReader,
                    dst: asyncio.StreamWriter) -> None:
        """Raw one-direction byte pump.  Deliberately frame- and metrics-
        blind: parsing here would double-count messages the shard already
        counts, corrupting the E1/E2 books the parity test pins."""
        try:
            while True:
                chunk = await src.read(_PUMP_CHUNK)
                if not chunk:
                    break
                dst.write(chunk)
                await dst.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            return
        finally:
            # Half-close so in-flight frames in the other direction still
            # deliver (DONE then EOF must not cut off a peer's DELIVER).
            try:
                if dst.can_write_eof():
                    dst.write_eof()
                else:
                    dst.close()
            except (OSError, RuntimeError):
                pass

    # Introspection ----------------------------------------------------------

    def shipped_spans(self) -> Dict[int, Dict[str, object]]:
        """Per-shard span batches received over the heartbeat pipe so far:
        ``{shard_id: {"epoch": float|None, "spans": [dict, ...]}}`` — the
        shard lanes of a merged cluster trace
        (:func:`repro.obs.telemetry.merge_chrome_trace`)."""
        assert self.monitor is not None
        return {
            shard_id: {"epoch": handle.span_epoch,
                       "spans": list(handle.shipped_spans)}
            for shard_id, handle in sorted(self.monitor.handles.items())
        }

    def status(self) -> Dict[str, object]:
        """The aggregated cluster snapshot a STATUS query returns."""
        assert self.monitor is not None
        rooms = {"filling": 0, "active": 0, "closed": 0}
        outcomes: Dict[str, int] = {}
        counters: Dict[str, int] = {}
        connections = 0
        open_rooms = 0
        histogram_parts: Dict[str, List[dict]] = {}
        shard_lines: Dict[str, object] = {}
        revocation: Dict[str, int] = {}
        for shard_id in sorted(self.monitor.handles):
            handle = self.monitor.handles[shard_id]
            shard_lines[str(shard_id)] = handle.summary()
            snapshot = handle.last_status
            if handle.state == DEAD or not snapshot:
                continue       # stale books of a dead shard would mislead
            for state, count in (snapshot.get("rooms") or {}).items():
                rooms[state] = rooms.get(state, 0) + count
            for outcome, count in (snapshot.get("outcomes") or {}).items():
                outcomes[outcome] = outcomes.get(outcome, 0) + count
            for name, value in (snapshot.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + value
            connections += snapshot.get("connections", 0)
            admission = snapshot.get("admission") or {}
            open_rooms += admission.get("open_rooms", 0)
            for name, summary in (snapshot.get("histograms") or {}).items():
                histogram_parts.setdefault(name, []).append(summary)
            for name, value in (snapshot.get("revocation") or {}).items():
                # epoch is a high-water mark per group; the counts sum.
                if name == "epoch":
                    revocation[name] = max(revocation.get(name, 0), value)
                else:
                    revocation[name] = revocation.get(name, 0) + value
        recorder = metrics.current_recorder()
        own = {name: value
               for name, value in sorted(recorder.total().extra.items())
               if name.startswith("svc-cluster:")}
        counters.update(own)
        return {
            "cluster": {
                "shards": len(self.monitor.handles),
                "states": self.monitor.states(),
                "accepting": self._accepting,
                "router_uptime_s": round(
                    time.perf_counter() - self._started, 3)
                    if self._started else 0.0,
            },
            "rooms": rooms,
            "open_rooms": open_rooms,
            "connections": connections,
            "outcomes": outcomes,
            "counters": counters,
            "histograms": {
                name: merged
                for name, parts in sorted(histogram_parts.items())
                if (merged := merge_histogram_summaries(name, parts))
                is not None
            },
            "shards": shard_lines,
            **({"revocation": revocation}
               if revocation.get("services") else {}),
        }


def merge_histogram_summaries(name: str,
                              summaries: List[dict]) -> Optional[dict]:
    """Merge per-shard histogram summaries into one — exact, not an
    approximation, because summaries carry the raw bucket counts: the
    merged distribution is what one histogram would hold had every
    observation landed in it (docs/OBSERVABILITY.md)."""
    merged: Optional[metrics.Histogram] = None
    bounds: List[float] = []
    part_sums: List[float] = []
    for summary in summaries:
        buckets = summary.get("buckets") or []
        these = [b["le"] for b in buckets if b["le"] is not None]
        if merged is None:
            if not these:
                continue
            bounds = these
            merged = metrics.Histogram(name, bounds)
        if [b["le"] for b in buckets if b["le"] is not None] != bounds:
            continue           # incompatible bounds: refuse to fake a merge
        for i, bucket in enumerate(buckets):
            merged.counts[i] += bucket["count"]
        merged.total += summary.get("count", 0)
        part_sums.append(summary.get("sum", 0.0))
        merged.clamped += summary.get("clamped", 0)
        for attr, pick in (("min", min), ("max", max)):
            value = summary.get(attr)
            if value is not None:
                current = getattr(merged, attr)
                setattr(merged, attr,
                        value if current is None else pick(current, value))
    if merged is None:
        return None
    # fsum, not +=: exact rounding makes the merged sum (and hence mean)
    # independent of shard enumeration order — pinned by the
    # order-insensitivity property test.
    merged.sum = math.fsum(part_sums)
    return merged.summary()


__all__ = ["ClusterConfig", "ClusterRouter", "merge_histogram_summaries"]
