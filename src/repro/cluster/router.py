"""Front-door router: one listening socket, N shard workers behind it.

Clients speak the unchanged rendezvous protocol to the router's port.
The router frame-reads exactly *one* message per connection — the opening
HELLO (or STATUS) — places the room onto a shard via consistent hashing
(:mod:`repro.cluster.placement`), replays the HELLO to the shard, and
then degrades into a transparent *frame-aligned* splice: every subsequent
frame (WELCOME, ROOM_READY, BROADCAST/DELIVER, DONE, ABORT) crosses the
router byte-identically (``encode_frame`` reproduces the exact wire
bytes) and uncounted.  The handshake therefore runs against the shard's
:class:`~repro.service.server.RendezvousServer` byte-for-byte as if the
client had dialled it directly — which is why per-party E1/E2 counter
books and session keys are identical to the single-process service (the
cluster parity test's claim).  Frame alignment (vs the raw byte pump it
replaced) is what makes live migration possible: a pump can stop at a
frame boundary and resume into a different shard without ever splitting
a frame.

Failure semantics (why clients never hang):

* placement only considers UP shards; a draining or dead shard is
  re-placed around by walking the ring's preference order — every router
  instance independently reaches the same next-best shard;
* no live shard -> typed ``BUSY("no-live-shards")`` — the client backs
  off and retries within its deadline;
* a shard dying mid-room surfaces to its clients as EOF/ABORT, which the
  client classifies as retryable (:mod:`repro.service.client`), and its
  supervision-pipe EOF removes it from placement on the same loop tick,
  so the retry lands on a surviving shard;
* drain (:meth:`ClusterRouter.drain_shard`) is a **live migration**, not
  a shed: the router pauses each member pump at a frame boundary and
  injects QUIESCE; the shard finishes its FIFO, ships an exact final
  checkpoint up the supervision pipe, and closes the room with outcome
  ``migrated``; the router restores the checkpoint on the ring's
  next-preferred live shard, re-splices every member with an ATTACH, and
  tells each client with a single MIGRATED frame.  No re-HELLO, no
  Phase I–III crypto re-run, zero client retries.  If any step times out
  the router falls back to the legacy shed path
  (:meth:`repro.cluster.health.HealthMonitor.drain`): unfilled rooms
  abort retryably and rejoins re-enter the router.  Docs:
  docs/PROTOCOL.md, "Live migration".

Aggregated STATUS: shards push their full status snapshot with every
heartbeat; a STATUS query to the router merges the freshest snapshot of
every non-dead shard — room counts and outcome tallies summed, ``svc:*``
counters summed, histograms merged bucket-by-bucket (exact, because
summaries carry raw bucket counts) — plus the router's own
``svc-cluster:*`` counters and per-shard health lines.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import metrics
from repro.cluster.health import DEAD, HealthMonitor, ShardHandle
from repro.cluster.placement import HashRing
from repro.cluster.shard import ShardSpec
from repro.errors import EncodingError, FrameError, ProtocolError
from repro.obs import logging as obslog
from repro.obs import spans as obs
from repro.service import framing, protocol

_log = obslog.get_logger("repro.cluster.router")

#: Pre-encoded QUIESCE sentinel the up pump injects at a frame boundary.
_QUIESCE_FRAME = framing.encode_frame(
    protocol.encode_message(protocol.Quiesce()))

#: Orchestration poll tick (quiesce/checkpoint waits), seconds.
_MIGRATE_TICK = 0.01


@dataclass
class ClusterConfig:
    """Tunables for one router + its shard fleet."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral (read .port after start)
    shards: int = 2
    #: Virtual nodes per shard on the placement ring.
    ring_replicas: int = 64
    #: Per-shard admission ceiling (open rooms); ``None`` = unlimited.
    max_rooms_per_shard: Optional[int] = None
    heartbeat_interval: float = 0.25
    #: Mark a shard dead after this long without a heartbeat (the wedged-
    #: worker backstop; hard death is caught instantly via pipe EOF).
    stale_after: float = 2.0
    shard_start_timeout: float = 30.0
    #: How long a fresh connection may sit silent before its first frame.
    first_frame_timeout: float = 30.0
    drain_timeout: float = 5.0        # per-shard grace for active rooms
    #: Overall budget for one drain migration (quiesce + checkpoint +
    #: restore + re-splice).  Past it the router falls back to the shed
    #: path — clients retry instead of hanging.
    migrate_timeout: float = 8.0
    max_frame: int = framing.DEFAULT_MAX_FRAME
    # Propagated into every ShardSpec:
    room_fill_timeout: float = 30.0
    handshake_timeout: float = 60.0
    idle_timeout: float = 60.0
    #: Per-shard deterministic token seeds (parity tests); ``None`` uses
    #: ``secrets`` everywhere.  Length must equal ``shards`` when given.
    token_seeds: Optional[List[int]] = None
    #: Enable span tracing cluster-wide: the router records placement
    #: spans and every shard ships its finished spans back over the
    #: heartbeat pipe for the merged trace (:mod:`repro.obs.telemetry`).
    trace: bool = False


class _Splice:
    """One client connection spliced onto a shard: frame-aligned pumps
    both ways, plus the live-migration hooks.

    Forwarding stays byte-identical (``encode_frame`` reproduces the
    exact frame bytes) and metrics-blind — parsing-and-counting here
    would double-count messages the shard already counts, corrupting the
    E1/E2 books the parity test pins.  The only decoding is a one-time
    *sniff* of the first server frames to learn this member's roster
    index (WELCOME) and session token (ROOM_READY) — the coordinates a
    migration needs to re-ATTACH the member elsewhere.

    Migration choreography (driven by :meth:`ClusterRouter.drain_shard`):

    1. ``begin_migration()`` — the up pump stops at its next frame
       boundary, injects one QUIESCE frame toward the shard and reports
       ``quiesced``; nothing from the client is ever dropped — a
       partially-read frame simply waits for the new shard.
    2. The shard ships the room's final checkpoint and closes; the down
       pump absorbs that EOF instead of passing it to the client.
    3. ``resplice(target, token)`` — dial the target shard, send
       ATTACH(token, index), swap both pumps onto the new streams, and
       tell the client with a single MIGRATED frame.  The client keeps
       its connection, index and crypto state.
    4. ``abort_migration()`` — fallback release if any step fails: both
       pumps resume against whatever streams are bound (the old shard,
       or its EOF — which clients answer with a retryable rejoin).
    """

    def __init__(self, router: "ClusterRouter", room: str,
                 client_reader: asyncio.StreamReader,
                 client_writer: asyncio.StreamWriter) -> None:
        self.router = router
        self.room = room                    # rendezvous name (placement key)
        self.index: Optional[int] = None    # sniffed from WELCOME
        self.token: Optional[str] = None    # sniffed from ROOM_READY
        self.client_reader = client_reader
        self.client_writer = client_writer
        self.shard_id: Optional[int] = None
        self.shard_reader: Optional[asyncio.StreamReader] = None
        self.shard_writer: Optional[asyncio.StreamWriter] = None
        self.client_gone = False            # client EOF'd / vanished
        self.closed = False                 # both pumps finished
        self.migrating = False
        self.quiesced = False
        self._mig_request = asyncio.Event()
        self._mig_resumed = asyncio.Event()
        self._down_eof = asyncio.Event()
        self._respliced = asyncio.Event()

    def bind(self, shard_id: int, reader: asyncio.StreamReader,
             writer: asyncio.StreamWriter) -> None:
        self.shard_id = shard_id
        self.shard_reader = reader
        self.shard_writer = writer

    async def run(self) -> None:
        try:
            await asyncio.gather(self._pump_up(), self._pump_down())
        finally:
            self.closed = True

    # Pumps ------------------------------------------------------------------

    async def _pump_up(self) -> None:
        """client -> shard.  Keeps one persistent read task so a pause
        never splits a frame; a frame read *during* a migration is simply
        forwarded to the new shard after the re-splice."""
        max_frame = self.router.config.max_frame
        read_task: Optional[asyncio.Task] = None
        try:
            while True:
                if read_task is None:
                    read_task = asyncio.ensure_future(
                        framing.read_frame(self.client_reader, max_frame))
                request = self._mig_request
                if request.is_set():
                    resumed = self._mig_resumed
                    # Frame boundary: nothing partial has been forwarded.
                    self.shard_writer.write(_QUIESCE_FRAME)
                    await self.shard_writer.drain()
                    self.quiesced = True
                    await resumed.wait()
                    continue
                request_task = asyncio.ensure_future(request.wait())
                await asyncio.wait({read_task, request_task},
                                   return_when=asyncio.FIRST_COMPLETED)
                request_task.cancel()
                if not read_task.done():
                    continue     # migration requested: handle at loop top
                payload = read_task.result()
                read_task = None
                if payload is None:
                    self.client_gone = True
                    return
                self.shard_writer.write(framing.encode_frame(payload))
                await self.shard_writer.drain()
        except (ConnectionError, OSError, FrameError,
                asyncio.IncompleteReadError):
            self.client_gone = True
        except asyncio.CancelledError:
            pass
        finally:
            if read_task is not None:
                read_task.cancel()
            # Half-close toward the shard so in-flight frames the other
            # way still deliver (DONE then EOF must not cut a DELIVER).
            try:
                if self.shard_writer.can_write_eof():
                    self.shard_writer.write_eof()
                else:
                    self.shard_writer.close()
            except (OSError, RuntimeError):
                pass

    async def _pump_down(self) -> None:
        """shard -> client.  Shard EOF during a migration is the expected
        end of the *donor* — absorb it and continue from the re-spliced
        stream instead of hanging up on the client."""
        max_frame = self.router.config.max_frame
        try:
            while True:
                try:
                    payload = await framing.read_frame(
                        self.shard_reader, max_frame)
                except (ConnectionError, OSError, FrameError,
                        asyncio.IncompleteReadError):
                    payload = None
                if payload is None:
                    self._down_eof.set()
                    if self.migrating and not self.client_gone:
                        respliced = self._respliced
                        await respliced.wait()
                        if self.migrating or self.closed:
                            return   # released without a re-splice
                        continue     # re-spliced: read from the new shard
                    return
                if self.index is None or self.token is None:
                    self._sniff(payload)
                self.client_writer.write(framing.encode_frame(payload))
                await self.client_writer.drain()
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            try:
                if self.client_writer.can_write_eof():
                    self.client_writer.write_eof()
                else:
                    self.client_writer.close()
            except (OSError, RuntimeError):
                pass

    def _sniff(self, payload: bytes) -> None:
        """Learn (index, token) from the first server frames, then stop
        decoding entirely — relay traffic crosses unparsed."""
        try:
            message = protocol.decode_message(payload)
        except (EncodingError, ProtocolError):
            return
        if isinstance(message, protocol.Welcome):
            self.index = message.index
        elif isinstance(message, protocol.RoomReady):
            self.token = message.token

    # Migration hooks --------------------------------------------------------

    def begin_migration(self) -> None:
        self.migrating = True
        self.quiesced = False
        self._mig_request.set()

    async def resplice(self, handle: ShardHandle, token: str,
                       timeout: float) -> None:
        """Move this member onto ``handle`` after its room was restored
        there.  Waits for the donor's EOF first — the guarantee that
        every old-shard frame has already been flushed to the client."""
        if self.index is None:
            raise ProtocolError("cannot re-splice before WELCOME")
        await asyncio.wait_for(self._down_eof.wait(), timeout)
        reader, writer = await asyncio.open_connection(
            handle.spec.host, handle.port)
        writer.write(framing.encode_frame(protocol.encode_message(
            protocol.Attach(token=token, index=self.index))))
        await writer.drain()
        self.shard_reader = reader
        self.shard_writer = writer
        self.shard_id = handle.shard_id
        self.token = token
        # The hop's only wire-visible evidence on the client side:
        self.client_writer.write(framing.encode_frame(protocol.encode_message(
            protocol.Migrated(token=token))))
        await self.client_writer.drain()
        self._release()

    def abort_migration(self) -> None:
        """Fallback release: resume both pumps against whatever streams
        are bound (no-op if this splice was never migrating)."""
        if not self.migrating:
            return
        self._release()

    def _release(self) -> None:
        self.migrating = False
        self.quiesced = False
        resumed, respliced = self._mig_resumed, self._respliced
        # Fresh events for any future migration before waking the pumps.
        self._mig_request = asyncio.Event()
        self._mig_resumed = asyncio.Event()
        self._down_eof = asyncio.Event()
        self._respliced = asyncio.Event()
        resumed.set()
        respliced.set()


class ClusterRouter:
    """The cluster front door.

    Usage::

        async with ClusterRouter(ClusterConfig(shards=2)) as router:
            ... clients connect to router.port ...

    or explicit ``await router.start()`` / ``await router.shutdown()``.
    """

    def __init__(self, config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        if self.config.shards < 1:
            raise ValueError("a cluster needs at least one shard")
        seeds = self.config.token_seeds
        if seeds is not None and len(seeds) != self.config.shards:
            raise ValueError("token_seeds length must equal shards")
        self.monitor: Optional[HealthMonitor] = None
        self.ring = HashRing(replicas=self.config.ring_replicas)
        self._server: Optional[asyncio.AbstractServer] = None
        self._sweep_task: Optional[asyncio.Task] = None
        self._splices: set = set()          # handler tasks
        self._splice_objs: set = set()      # live _Splice objects
        #: Rooms currently mid-migration, by rendezvous name: a HELLO for
        #: one of these waits for the hop to finish instead of opening a
        #: duplicate room on the target.
        self._migrating_rooms: Dict[str, asyncio.Event] = {}
        self._accepting = False
        self._started = 0.0

    # Lifecycle --------------------------------------------------------------

    def _specs(self) -> List[ShardSpec]:
        cfg = self.config
        return [
            ShardSpec(
                shard_id=i,
                host=cfg.host,
                room_fill_timeout=cfg.room_fill_timeout,
                handshake_timeout=cfg.handshake_timeout,
                idle_timeout=cfg.idle_timeout,
                drain_timeout=cfg.drain_timeout,
                max_rooms=cfg.max_rooms_per_shard,
                token_seed=(cfg.token_seeds[i]
                            if cfg.token_seeds is not None else None),
                heartbeat_interval=cfg.heartbeat_interval,
                trace=cfg.trace)
            for i in range(cfg.shards)
        ]

    async def start(self) -> "ClusterRouter":
        self.monitor = HealthMonitor(self._specs(),
                                     stale_after=self.config.stale_after)
        await self.monitor.start()
        await self.monitor.wait_up(self.config.shard_start_timeout)
        for shard_id in self.monitor.handles:
            self.ring.add(shard_id)
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        self._sweep_task = asyncio.ensure_future(self._sweep_loop())
        self._accepting = True
        self._started = time.perf_counter()
        obslog.log_event(_log, "router-start", port=self.port,
                         shards=self.config.shards)
        return self

    async def __aenter__(self) -> "ClusterRouter":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    @property
    def port(self) -> int:
        assert self._server is not None, "router not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "router not started"
        await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        self._accepting = False
        if self._sweep_task is not None:
            self._sweep_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.monitor is not None:
            await self.monitor.stop(
                drain=drain,
                drain_timeout=self.config.drain_timeout + 5.0)
        for task in list(self._splices):
            task.cancel()
        if self._splices:
            await asyncio.gather(*self._splices, return_exceptions=True)

    # Failure injection / operations -----------------------------------------

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one shard and remove it from placement immediately."""
        assert self.monitor is not None
        self.monitor.kill(shard_id)

    async def drain_shard(self, shard_id: int) -> Dict[str, int]:
        """Drain one shard as a **live migration**: quiesce every member
        pump, collect the shard's final room checkpoints, restore each
        room on the ring's next-preferred live shard, re-splice the
        members (one MIGRATED frame each), then command the now-empty
        worker to drain.  Rooms that complete on their own mid-drain are
        simply left to finish; any step that times out falls back to the
        legacy shed path for the affected room (clients retry).

        Returns a small report: ``{"migrated", "completed", "failed"}``
        room counts.
        """
        assert self.monitor is not None
        loop = asyncio.get_running_loop()
        handle = self.monitor.handles[shard_id]
        report = {"migrated": 0, "completed": 0, "failed": 0}
        if not handle.alive:
            self.monitor.drain(shard_id)
            return report
        # Out of placement first: no new room may land on the donor
        # while its existing rooms are being moved off.
        self.monitor.mark_draining(shard_id)
        splices = [s for s in self._splice_objs
                   if s.shard_id == shard_id and not s.closed
                   and not s.client_gone]
        groups: Dict[str, List[_Splice]] = {}
        for splice in splices:
            groups.setdefault(splice.room, []).append(splice)
        obslog.log_event(_log, "drain-migration-start", shard=shard_id,
                         rooms=len(groups), members=len(splices))
        gates: Dict[str, asyncio.Event] = {}
        for name in groups:
            gate = asyncio.Event()
            gates[name] = gate
            self._migrating_rooms[name] = gate
        deadline = loop.time() + self.config.migrate_timeout
        try:
            for splice in splices:
                splice.begin_migration()
            # Phase 1: every live member quiesced (or gone on its own).
            while loop.time() < deadline:
                if all(s.quiesced or s.closed or s.client_gone
                       for s in splices):
                    break
                await asyncio.sleep(_MIGRATE_TICK)
            # Phase 2: a final checkpoint (or natural completion) per room.
            while loop.time() < deadline:
                pending = [
                    name for name, members in groups.items()
                    if self._checkpoint_for(handle, name, members) is None
                    and not all(s.closed or s.client_gone for s in members)]
                if not pending:
                    break
                await asyncio.sleep(_MIGRATE_TICK)
            # Phase 3: restore + re-splice, room by room.
            for name, members in groups.items():
                payload = self._checkpoint_for(handle, name, members)
                if payload is None:
                    # The room finished by itself while we quiesced (its
                    # DONEs were already in flight) — nothing to move.
                    report["completed"] += 1
                    continue
                moved = await self._migrate_room(handle, name, payload,
                                                 members, deadline)
                report["migrated" if moved else "failed"] += 1
        finally:
            for splice in splices:
                splice.abort_migration()   # no-op once re-spliced
            for name, gate in gates.items():
                gate.set()
                if self._migrating_rooms.get(name) is gate:
                    del self._migrating_rooms[name]
            # The donor is empty (or past saving): the classic drain
            # command stops its accept loop and exits the worker.
            self.monitor.drain(shard_id)
        obslog.log_event(_log, "drain-migration-done", shard=shard_id,
                         **report)
        return report

    def _checkpoint_for(self, handle: ShardHandle, name: str,
                        members: List[_Splice]) -> Optional[dict]:
        """The donor's final checkpoint for one room group: matched by
        session token when the members know it, by rendezvous name for a
        still-filling room (at most one filling room per name)."""
        tokens = {s.token for s in members if s.token}
        for token, payload in handle.final_checkpoints.items():
            if token in tokens:
                return payload
            if not tokens and payload.get("name") == name:
                return payload
        return None

    async def _migrate_room(self, donor: ShardHandle, name: str,
                            payload: dict, members: List[_Splice],
                            deadline: float) -> bool:
        """Restore one checkpointed room on a peer shard and re-splice
        its members.  False (-> shed fallback for these clients) if no
        live peer exists or the restore is refused/times out."""
        assert self.monitor is not None
        loop = asyncio.get_running_loop()
        token = str(payload.get("token") or "")
        live = {h.shard_id for h in self.monitor.live()}
        # Same walk new HELLOs take with the donor out of placement — so
        # late members of a migrated filling room land on the same shard.
        target_id = self.ring.place(name, only=live)
        if target_id is None:
            metrics.bump("svc-cluster:migrate-failures")
            obslog.log_event(_log, "migrate-no-target",
                             source=donor.shard_id)
            return False
        target = self.monitor.handles[target_id]
        started = loop.time()
        ack = await self.monitor.restore_room(
            target_id, payload, timeout=max(deadline - loop.time(), 0.1))
        if not ack.get("ok"):
            metrics.bump("svc-cluster:migrate-failures")
            obslog.log_event(_log, "migrate-restore-failed",
                             target=target_id, error=str(ack.get("error")))
            return False
        for splice in members:
            if splice.closed or splice.client_gone:
                continue
            try:
                await splice.resplice(target, token,
                                      max(deadline - loop.time(), 0.1))
            except (asyncio.TimeoutError, ProtocolError,
                    ConnectionError, OSError):
                metrics.bump("svc-cluster:resplice-failures")
                splice.abort_migration()
        with metrics.scope(target.spec.scope):
            metrics.bump("svc-cluster:migrations")
        metrics.observe("svc-cluster:restore-latency",
                        loop.time() - started)
        obslog.log_event(_log, "room-migrated", token=token,
                         source=donor.shard_id, target=target_id)
        return True

    async def _sweep_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self.config.heartbeat_interval)
                self.monitor.sweep()
        except asyncio.CancelledError:
            pass

    # Accept path ------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        """One client connection.  Every exit path writes a typed frame or
        closes cleanly — a router bug must never strand a client (the
        kill-one-shard acceptance criterion)."""
        self._splices.add(asyncio.current_task())
        metrics.bump("svc-cluster:accepts")
        try:
            try:
                blob = await asyncio.wait_for(
                    framing.read_frame(reader, self.config.max_frame),
                    self.config.first_frame_timeout)
            except (asyncio.TimeoutError, FrameError,
                    ConnectionError, OSError):
                return
            if blob is None:
                return
            try:
                message = protocol.decode_message(blob)
            except (EncodingError, ProtocolError):
                metrics.bump("svc-cluster:protocol-errors")
                await self._best_effort(
                    writer, protocol.Error(reason="malformed first frame"))
                return
            if isinstance(message, protocol.Status):
                metrics.bump("svc-cluster:status-queries")
                await self._best_effort(writer, protocol.StatusReply(
                    body=json.dumps(self.status(), sort_keys=True)))
                return
            if not isinstance(message, protocol.Hello):
                metrics.bump("svc-cluster:protocol-errors")
                await self._best_effort(writer, protocol.Error(
                    reason=f"expected HELLO, got {type(message).__name__}"))
                return
            if not self._accepting:
                metrics.bump("svc-cluster:busy-sheds")
                metrics.bump("svc-cluster:busy:draining")
                await self._best_effort(
                    writer, protocol.Busy(reason="draining"))
                return
            await self._place_and_splice(message, blob, reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass
            self._splices.discard(asyncio.current_task())

    async def _best_effort(self, writer: asyncio.StreamWriter,
                           message) -> None:
        try:
            writer.write(framing.encode_frame(
                protocol.encode_message(message)))
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _place_and_splice(self, hello: protocol.Hello, blob: bytes,
                                reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        """Choose a shard for the room, replay the HELLO, then splice
        frames both ways until either side hangs up."""
        gate = self._migrating_rooms.get(hello.room)
        if gate is not None:
            # The room is mid-hop: placing now could open a duplicate on
            # the target before the restore lands.  Wait out the hop.
            try:
                await asyncio.wait_for(gate.wait(),
                                       self.config.migrate_timeout)
            except asyncio.TimeoutError:
                pass
        preferred = self.ring.place(hello.room)
        tried: set = set()
        while True:
            live = {h.shard_id for h in self.monitor.live()}
            shard_id = self.ring.place(hello.room, only=live - tried)
            if shard_id is None:
                metrics.bump("svc-cluster:no-live-shards")
                metrics.bump("svc-cluster:busy-sheds")
                metrics.bump("svc-cluster:busy:no-live-shards")
                obslog.log_event(_log, "no-live-shards")
                await self._best_effort(
                    writer, protocol.Busy(reason="no-live-shards"))
                return
            handle = self.monitor.handles[shard_id]
            try:
                shard_reader, shard_writer = await asyncio.open_connection(
                    handle.spec.host, handle.port)
                break
            except OSError:
                # Died between heartbeat and dial: record it, walk on.
                tried.add(shard_id)
                self.monitor.mark_dead(handle, why="connect-refused")
        with metrics.scope(handle.spec.scope):
            metrics.bump("svc-cluster:placements")
            if shard_id != preferred:
                # The ring's primary owner was draining/dead — explicit
                # re-placement onto the next shard in preference order.
                metrics.bump("svc-cluster:replacements")
        # Placement span under the client's trace context: after a shard
        # death the rejoin's span lands in the *same* trace with
        # ``replaced=True`` — the failover is visible as one trace.
        obs.start_span("place", parent=None,
                       trace=obs.valid_trace(hello.trace),
                       shard=shard_id,
                       replaced=shard_id != preferred).end()
        obslog.log_event(_log, "placed", shard=shard_id,
                         replaced=shard_id != preferred)
        splice = _Splice(self, hello.room, reader, writer)
        splice.bind(shard_id, shard_reader, shard_writer)
        self._splice_objs.add(splice)
        try:
            shard_writer.write(framing.encode_frame(blob))
            await shard_writer.drain()
            await splice.run()
        except (ConnectionError, OSError):
            pass
        finally:
            self._splice_objs.discard(splice)
            for w in (splice.shard_writer, writer):
                try:
                    w.close()
                except Exception:
                    pass

    # Introspection ----------------------------------------------------------

    def shipped_spans(self) -> Dict[int, Dict[str, object]]:
        """Per-shard span batches received over the heartbeat pipe so far:
        ``{shard_id: {"epoch": float|None, "spans": [dict, ...]}}`` — the
        shard lanes of a merged cluster trace
        (:func:`repro.obs.telemetry.merge_chrome_trace`)."""
        assert self.monitor is not None
        return {
            shard_id: {"epoch": handle.span_epoch,
                       "spans": list(handle.shipped_spans)}
            for shard_id, handle in sorted(self.monitor.handles.items())
        }

    def status(self) -> Dict[str, object]:
        """The aggregated cluster snapshot a STATUS query returns."""
        assert self.monitor is not None
        rooms = {"filling": 0, "active": 0, "closed": 0, "restoring": 0}
        outcomes: Dict[str, int] = {}
        counters: Dict[str, int] = {}
        connections = 0
        open_rooms = 0
        histogram_parts: Dict[str, List[dict]] = {}
        shard_lines: Dict[str, object] = {}
        revocation: Dict[str, int] = {}
        for shard_id in sorted(self.monitor.handles):
            handle = self.monitor.handles[shard_id]
            shard_lines[str(shard_id)] = handle.summary()
            snapshot = handle.last_status
            if handle.state == DEAD or not snapshot:
                continue       # stale books of a dead shard would mislead
            for state, count in (snapshot.get("rooms") or {}).items():
                rooms[state] = rooms.get(state, 0) + count
            for outcome, count in (snapshot.get("outcomes") or {}).items():
                outcomes[outcome] = outcomes.get(outcome, 0) + count
            for name, value in (snapshot.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + value
            connections += snapshot.get("connections", 0)
            admission = snapshot.get("admission") or {}
            open_rooms += admission.get("open_rooms", 0)
            for name, summary in (snapshot.get("histograms") or {}).items():
                histogram_parts.setdefault(name, []).append(summary)
            for name, value in (snapshot.get("revocation") or {}).items():
                # epoch is a high-water mark per group; the counts sum.
                if name == "epoch":
                    revocation[name] = max(revocation.get(name, 0), value)
                else:
                    revocation[name] = revocation.get(name, 0) + value
        recorder = metrics.current_recorder()
        own = {name: value
               for name, value in sorted(recorder.total().extra.items())
               if name.startswith("svc-cluster:")}
        counters.update(own)
        # The router's own histograms (e.g. svc-cluster:restore-latency)
        # merge into the same bucket space as the shards'.
        for name, histogram in recorder.histograms().items():
            histogram_parts.setdefault(name, []).append(histogram.summary())
        return {
            "cluster": {
                "shards": len(self.monitor.handles),
                "states": self.monitor.states(),
                "accepting": self._accepting,
                "router_uptime_s": round(
                    time.perf_counter() - self._started, 3)
                    if self._started else 0.0,
            },
            "rooms": rooms,
            "open_rooms": open_rooms,
            "connections": connections,
            "outcomes": outcomes,
            "counters": counters,
            "histograms": {
                name: merged
                for name, parts in sorted(histogram_parts.items())
                if (merged := merge_histogram_summaries(name, parts))
                is not None
            },
            "shards": shard_lines,
            **({"revocation": revocation}
               if revocation.get("services") else {}),
        }


def merge_histogram_summaries(name: str,
                              summaries: List[dict]) -> Optional[dict]:
    """Merge per-shard histogram summaries into one — exact, not an
    approximation, because summaries carry the raw bucket counts: the
    merged distribution is what one histogram would hold had every
    observation landed in it (docs/OBSERVABILITY.md)."""
    merged: Optional[metrics.Histogram] = None
    bounds: List[float] = []
    part_sums: List[float] = []
    for summary in summaries:
        buckets = summary.get("buckets") or []
        these = [b["le"] for b in buckets if b["le"] is not None]
        if merged is None:
            if not these:
                continue
            bounds = these
            merged = metrics.Histogram(name, bounds)
        if [b["le"] for b in buckets if b["le"] is not None] != bounds:
            continue           # incompatible bounds: refuse to fake a merge
        for i, bucket in enumerate(buckets):
            merged.counts[i] += bucket["count"]
        merged.total += summary.get("count", 0)
        part_sums.append(summary.get("sum", 0.0))
        merged.clamped += summary.get("clamped", 0)
        for attr, pick in (("min", min), ("max", max)):
            value = summary.get(attr)
            if value is not None:
                current = getattr(merged, attr)
                setattr(merged, attr,
                        value if current is None else pick(current, value))
    if merged is None:
        return None
    # fsum, not +=: exact rounding makes the merged sum (and hence mean)
    # independent of shard enumeration order — pinned by the
    # order-insensitivity property test.
    merged.sum = math.fsum(part_sums)
    return merged.summary()


__all__ = ["ClusterConfig", "ClusterRouter", "merge_histogram_summaries"]
