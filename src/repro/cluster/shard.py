"""Shard worker: one :class:`~repro.service.server.RendezvousServer` in
its own process, supervised over a pipe.

Each shard is a *complete* rendezvous server on its own event loop and
its own :class:`repro.metrics.Recorder` — room relay on shard 3 never
contends with shard 1's loop, and a shard crash loses only its own rooms.
Because the server code is byte-identical to the single-process service,
a handshake routed through a shard produces the same wire traffic and the
same per-party E1/E2 counter books (asserted by the cluster parity test).

Supervision protocol (pickled tuples on the pipe; parent side in
:mod:`repro.cluster.health`):

* child -> parent: ``("up", shard_id, port)`` once listening;
  ``("hb", shard_id, status_dict)`` every ``heartbeat_interval`` seconds
  carrying the server's full :meth:`status` snapshot (the router merges
  these into the aggregated cluster STATUS — no extra query path);
  ``("spans", shard_id, {"epoch", "spans"})`` batches of finished spans
  when tracing is on (drained each beat plus a final flush — the raw
  material of the merged cluster trace, :mod:`repro.obs.telemetry`);
  ``("ckpt", shard_id, {"final", "checkpoint"})`` room checkpoints at
  fill/phase barriers (``final=False``) and at drain-quiesce
  (``final=True`` — the exact snapshot a live migration restores);
  ``("restored", shard_id, {"token", "ok", ...})`` acking a restore;
  ``("draining", shard_id)`` when a drain begins and
  ``("down", shard_id)`` after a clean shutdown.
* parent -> child: ``("restore", checkpoint_payload)`` — restore a
  migrated room (acked with ``("restored", ...)``); ``("drain",)`` —
  stop accepting, give active rooms the drain window, abort stragglers,
  exit; ``("stop",)`` — immediate shutdown.  Pipe EOF (parent died) is
  treated as ``("stop",)``.

Workers are started with the multiprocessing ``spawn`` context: a fresh
interpreter, no inherited event loop or lock state — ``fork`` under a
live asyncio loop is a deadlock lottery.  :class:`ShardSpec` therefore
carries only primitives.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Optional

from repro import metrics
from repro.errors import ProtocolError
from repro.service.server import RendezvousServer, ServerConfig


@dataclass(frozen=True)
class ShardSpec:
    """Everything a spawned worker needs — primitives only (pickled into
    the fresh interpreter)."""

    shard_id: int
    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral; reported in ("up", ...)
    room_fill_timeout: float = 30.0
    handshake_timeout: float = 60.0
    idle_timeout: float = 60.0
    drain_timeout: float = 5.0
    #: Per-shard admission ceiling (open rooms); ``None`` = unlimited.
    max_rooms: Optional[int] = None
    #: Seed for deterministic room tokens (parity tests); ``None`` = secrets.
    token_seed: Optional[int] = None
    heartbeat_interval: float = 0.25
    #: Enable span tracing in the worker.  Finished spans are batched to
    #: the parent over the supervision pipe (``("spans", ...)`` messages,
    #: drained by the heartbeat loop) for the merged cluster trace.
    trace: bool = False

    @property
    def scope(self) -> str:
        """Metric scope the router charges this shard's events under."""
        return f"shard:{self.shard_id}"


def shard_main(spec: ShardSpec, conn) -> None:
    """Process entry point (must stay importable at module top level for
    the ``spawn`` bootstrap).  ``conn`` is the child end of the pipe."""
    recorder = metrics.Recorder()
    recorder.tracing = spec.trace
    with metrics.using(recorder):
        try:
            asyncio.run(_shard_async(spec, conn))
        except KeyboardInterrupt:
            pass
        finally:
            try:
                conn.close()
            except Exception:
                pass


def _send_safe(conn, message) -> None:
    """Best-effort pipe send: a vanished parent must not crash the shard
    mid-drain (the OS will reap us soon enough either way)."""
    try:
        conn.send(message)
    except (BrokenPipeError, OSError, ValueError):
        pass


async def _shard_async(spec: ShardSpec, conn) -> None:
    loop = asyncio.get_running_loop()
    commands: asyncio.Queue = asyncio.Queue()

    def on_pipe_readable() -> None:
        try:
            command = conn.recv()
        except (EOFError, OSError):
            loop.remove_reader(conn.fileno())
            commands.put_nowait(("stop",))
            return
        commands.put_nowait(command if command else ("stop",))

    config = ServerConfig(
        host=spec.host, port=spec.port,
        room_fill_timeout=spec.room_fill_timeout,
        handshake_timeout=spec.handshake_timeout,
        idle_timeout=spec.idle_timeout,
        drain_timeout=spec.drain_timeout,
        max_rooms=spec.max_rooms,
        token_rng=(random.Random(spec.token_seed)
                   if spec.token_seed is not None else None))
    server = await RendezvousServer(config).start()

    def on_checkpoint(payload: dict, final: bool) -> None:
        # Room checkpoints (fill / phase barriers / drain-quiesce) travel
        # up the same pipe the heartbeats use.
        _send_safe(conn, ("ckpt", spec.shard_id,
                          {"final": final, "checkpoint": payload}))

    server.on_checkpoint = on_checkpoint
    loop.add_reader(conn.fileno(), on_pipe_readable)
    _send_safe(conn, ("up", spec.shard_id, server.port))
    heartbeats = asyncio.ensure_future(_heartbeat_loop(spec, conn, server))
    try:
        while True:
            command = await commands.get()
            kind = command[0]
            if kind == "restore":
                _restore(spec, conn, server, command[1])
                continue
            if kind in ("drain", "stop"):
                break
    finally:
        heartbeats.cancel()
        try:
            # Run the loop's finally (its own span flush) to completion
            # *now*: a flush scheduled after ("down",) would race the
            # parent closing its pipe end and lose the final batch.
            await heartbeats
        except asyncio.CancelledError:
            pass
        try:
            loop.remove_reader(conn.fileno())
        except (OSError, ValueError):
            pass
    if kind == "drain":
        _send_safe(conn, ("draining", spec.shard_id))
        await server.shutdown(drain=True)
    else:
        await server.shutdown(drain=False)
    # Spans finished during shutdown (aborted rooms on the shed path,
    # migrated rooms' roots) must beat ("down",) onto the pipe — the
    # parent stops reading the moment it sees the shard go down.
    _ship_spans(spec, conn)
    _send_safe(conn, ("down", spec.shard_id))


def _restore(spec: ShardSpec, conn, server, payload) -> None:
    """Restore one migrated room from its final checkpoint and ack the
    router.  Refusals (version mismatch, collisions, junk payloads) are
    acked with ``ok=False`` — the router falls back to the shed path for
    that room rather than wedging the drain."""
    token = payload.get("token") if isinstance(payload, dict) else None
    try:
        result = server.restore_room(payload)
    except ProtocolError as exc:
        metrics.bump("svc:restore-rejected")
        _send_safe(conn, ("restored", spec.shard_id,
                          {"token": token, "ok": False, "error": str(exc)}))
        return
    result["ok"] = True
    _send_safe(conn, ("restored", spec.shard_id, result))


async def _heartbeat_loop(spec: ShardSpec, conn, server) -> None:
    try:
        while True:
            _send_safe(conn, ("hb", spec.shard_id, server.status()))
            _ship_spans(spec, conn)
            await asyncio.sleep(spec.heartbeat_interval)
    except asyncio.CancelledError:
        pass
    finally:
        # Final flush so spans finished after the last beat still reach
        # the parent before the worker exits (drain path).
        _ship_spans(spec, conn)


def _ship_spans(spec: ShardSpec, conn) -> None:
    """Drain finished spans to the parent as plain dicts.  Draining keeps
    the worker's span store bounded for arbitrarily long runs; shipping
    nothing when tracing is off keeps the pipe traffic byte-identical to
    the pre-telemetry protocol."""
    recorder = metrics.current_recorder()
    if not recorder.tracing:
        return
    drained = recorder.drain_spans()
    if not drained:
        return
    _send_safe(conn, ("spans", spec.shard_id, {
        "epoch": recorder.epoch,
        "spans": [span.as_dict() for span in drained],
    }))


__all__ = ["ShardSpec", "shard_main"]
