"""The quadratic extension field F_p^2 = F_p[i] / (i^2 + 1).

Valid whenever p = 3 (mod 4), so -1 is a non-residue.  Elements are
immutable pairs ``a + b*i``; the class supports the arithmetic Miller's
algorithm needs (add, sub, mul, inverse, exponentiation, conjugation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.modmath import inverse
from repro.errors import ParameterError


@dataclass(frozen=True)
class Fp2:
    """a + b*i in F_p^2."""

    a: int
    b: int
    p: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "a", self.a % self.p)
        object.__setattr__(self, "b", self.b % self.p)

    # Constructors -------------------------------------------------------------

    @staticmethod
    def of(value: int, p: int) -> "Fp2":
        return Fp2(value, 0, p)

    @staticmethod
    def one(p: int) -> "Fp2":
        return Fp2(1, 0, p)

    @staticmethod
    def zero(p: int) -> "Fp2":
        return Fp2(0, 0, p)

    @staticmethod
    def i(p: int) -> "Fp2":
        return Fp2(0, 1, p)

    # Predicates ----------------------------------------------------------------

    @property
    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    @property
    def is_one(self) -> bool:
        return self.a == 1 and self.b == 0

    # Arithmetic -----------------------------------------------------------------

    def _check(self, other: "Fp2") -> None:
        if self.p != other.p:
            raise ParameterError("mixed-field arithmetic")

    def __add__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        return Fp2(self.a + other.a, self.b + other.b, self.p)

    def __sub__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        return Fp2(self.a - other.a, self.b - other.b, self.p)

    def __neg__(self) -> "Fp2":
        return Fp2(-self.a, -self.b, self.p)

    def __mul__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        # (a + bi)(c + di) = (ac - bd) + (ad + bc)i
        a, b, c, d, p = self.a, self.b, other.a, other.b, self.p
        return Fp2(a * c - b * d, a * d + b * c, p)

    def scale(self, k: int) -> "Fp2":
        return Fp2(self.a * k, self.b * k, self.p)

    def conjugate(self) -> "Fp2":
        return Fp2(self.a, -self.b, self.p)

    def norm(self) -> int:
        """a^2 + b^2 in F_p (the field norm)."""
        return (self.a * self.a + self.b * self.b) % self.p

    def inv(self) -> "Fp2":
        if self.is_zero:
            raise ParameterError("division by zero in F_p^2")
        n_inv = inverse(self.norm(), self.p)
        return Fp2(self.a * n_inv, -self.b * n_inv, self.p)

    def __truediv__(self, other: "Fp2") -> "Fp2":
        return self * other.inv()

    def __pow__(self, exponent: int) -> "Fp2":
        if exponent < 0:
            return self.inv() ** (-exponent)
        result = Fp2.one(self.p)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result
