"""The supersingular curve E: y^2 = x^3 + x over F_p (p = 3 mod 4).

``#E(F_p) = p + 1`` for this family, so choosing ``p = c*q - 1`` with ``q``
prime gives an order-q subgroup (cofactor ``c``) with embedding degree 2 —
the classic pairing-friendly setting of the early secret-handshake and IBE
literature.  Points live over F_p^2 (affine coordinates, ``None`` = point
at infinity) so the same arithmetic serves both pairing arguments; the
distortion map ``phi(x, y) = (-x, i*y)`` moves an F_p point off the base
field, making the modified Tate pairing non-degenerate on a single cyclic
subgroup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto import hashing
from repro.crypto.modmath import jacobi, sqrt_mod_prime
from repro.errors import ParameterError
from repro.pairing.fields import Fp2

# name -> (p, q, c) with p = c*q - 1, p = 3 mod 4, both prime.
_CURVES: Dict[str, Tuple[int, int, int]] = {
    "pf256": (
        0xA7080B715F255A695BB87D175317FB24B8B2C2DD69D91A068B645B7F6B381417,
        0xACF5E8063E18C08873C05765EC144F18DD9A7E7D,
        0xF73967586EF24FB40552A7F8,
    ),
    "pf512": (
        0xA46CC482DA3EC067930BE2C2E1CAE908ABB445ADF1B30862EADF673AC3B8532B759057CE6B96F265008BCE4E288315FB90DD9FF45FDD379B6099FA92C374B663,
        0xEC0643B173F29C6A4242C22583E2665AF6540601,
        0xB25737A83E8B7985017A3AD8F9F73EFB66A27C006A797F9DFD6CB580CE21626C1B0C6BB0CD3E91D51C6E5E64,
    ),
    "pf1024": (
        0x809BB0C590BB1167EA2ED9EB5569188494C378CCE051E812CDC81CFC6ACD3DDCD5E1B36A109BD2FD72BA9DFD415A9E22F566E711F5A7AE68B7C450B57ADD5A552F80CA9825BFFFD0F8F133CD80818639293BD7DA1C418D8FA26F5B43BF436B463FBF3AE782D6C669DE7083825B9FA312B4C266577EAD4DB9860DACFF7388BFFF,
        0x8DF73189893529AAE8F74FE6766A65631ED7B74C50145F2E1F44A465,
        0xE7E9C4B656B1E6E32CC736785A2150D214970F5676E9718D1EC5AB708AFCED94DDC9AE3F3B0204EED8851D2D44F3579F8EC357D8002E8A61A5BB3180B983DFADB883F8D4CAEA1F6338758075C383D2243B0062B3D75C011A2E9F77FEE40879D9AAF9C000,
    ),
}


@dataclass(frozen=True)
class Point:
    """Affine point with coordinates in F_p^2 (None-handling lives in
    :class:`Curve`; a Point instance is always finite)."""

    x: Fp2
    y: Fp2

    def is_on_fp(self) -> bool:
        """True iff both coordinates lie in the base field."""
        return self.x.b == 0 and self.y.b == 0


INFINITY: Optional[Point] = None


class Curve:
    """E: y^2 = x^3 + x over F_p^2 with pairing bookkeeping."""

    def __init__(self, p: int, q: int, cofactor: int) -> None:
        if p % 4 != 3:
            raise ParameterError("supersingular family needs p = 3 mod 4")
        if (p + 1) != q * cofactor:
            raise ParameterError("group order mismatch: p + 1 != q * c")
        self.p = p
        self.q = q
        self.cofactor = cofactor

    # Point predicates --------------------------------------------------------------

    def contains(self, point: Optional[Point]) -> bool:
        if point is None:
            return True
        lhs = point.y * point.y
        rhs = point.x * point.x * point.x + point.x
        return lhs == rhs

    # Group law ------------------------------------------------------------------------

    def negate(self, point: Optional[Point]) -> Optional[Point]:
        if point is None:
            return None
        return Point(point.x, -point.y)

    def add(self, a: Optional[Point], b: Optional[Point]) -> Optional[Point]:
        if a is None:
            return b
        if b is None:
            return a
        if a.x == b.x:
            if (a.y + b.y).is_zero:
                return None
            return self.double(a)
        slope = (b.y - a.y) / (b.x - a.x)
        x3 = slope * slope - a.x - b.x
        y3 = slope * (a.x - x3) - a.y
        return Point(x3, y3)

    def double(self, a: Optional[Point]) -> Optional[Point]:
        if a is None or a.y.is_zero:
            return None
        three_x2 = (a.x * a.x).scale(3)
        slope = (three_x2 + Fp2.one(self.p)) / a.y.scale(2)
        x3 = slope * slope - a.x.scale(2)
        y3 = slope * (a.x - x3) - a.y
        return Point(x3, y3)

    def multiply(self, point: Optional[Point], scalar: int) -> Optional[Point]:
        if scalar < 0:
            return self.multiply(self.negate(point), -scalar)
        result: Optional[Point] = None
        addend = point
        while scalar:
            if scalar & 1:
                result = self.add(result, addend)
            addend = self.double(addend)
            scalar >>= 1
        return result

    # Distortion map ----------------------------------------------------------------------

    def distort(self, point: Optional[Point]) -> Optional[Point]:
        """phi(x, y) = (-x, i*y): maps E(F_p) into the trace-zero subgroup."""
        if point is None:
            return None
        return Point(-point.x, point.y * Fp2.i(self.p))

    # Base-field points -----------------------------------------------------------------------

    def lift_x(self, x: int) -> Optional[Point]:
        """A point with the given base-field x, if x^3 + x is a square."""
        rhs = (x * x * x + x) % self.p
        if rhs == 0:
            return Point(Fp2.of(x, self.p), Fp2.zero(self.p))
        if jacobi(rhs, self.p) != 1:
            return None
        y = sqrt_mod_prime(rhs, self.p)
        return Point(Fp2.of(x, self.p), Fp2.of(y, self.p))

    def hash_to_point(self, *values) -> Point:
        """Hash into the order-q subgroup of E(F_p) (try-and-increment plus
        cofactor clearing) — the H1 of the SOK/Balfanz constructions."""
        counter = 0
        while True:
            x = hashing.hash_mod("pairing-h2p", self.p, counter, *values)
            candidate = self.lift_x(x)
            if candidate is not None:
                point = self.multiply(candidate, self.cofactor)
                if point is not None:
                    return point
            counter += 1

    def random_point(self, rng: Optional[random.Random] = None) -> Point:
        """A random point of order q on E(F_p)."""
        rng = rng or random
        while True:
            candidate = self.lift_x(rng.randrange(self.p))
            if candidate is None:
                continue
            point = self.multiply(candidate, self.cofactor)
            if point is not None:
                return point

    def generator(self) -> Point:
        """A fixed order-q generator (deterministically hashed)."""
        return self.hash_to_point("generator")


def curve_params(name: str = "pf256") -> Curve:
    """Look up a precomputed pairing-friendly curve."""
    try:
        p, q, c = _CURVES[name]
    except KeyError:
        raise ParameterError(
            f"unknown curve {name!r}; available: {sorted(_CURVES)}"
        ) from None
    return Curve(p, q, c)
