"""Bilinear pairings from scratch: F_p and F_p^2 arithmetic, the
supersingular curve y^2 = x^3 + x (p = 3 mod 4, embedding degree 2), the
Tate pairing via Miller's algorithm with a distortion map, and the
Sakai-Ohgishi-Kasahara identity-based key agreement [29] — the foundation
of the Balfanz et al. baseline handshake [3] that Section 10 compares GCD
against.

Parameters are research-grade (small pairing-friendly primes, precomputed
like everything else in :mod:`repro.crypto.params`); the baseline's role is
comparative, not deployable.
"""

from repro.pairing.curve import Curve, Point, curve_params  # noqa: F401
from repro.pairing.tate import tate_pairing  # noqa: F401
from repro.pairing.sok import SokAuthority  # noqa: F401
