"""Sakai-Ohgishi-Kasahara (SOK) identity-based non-interactive key
agreement [29] — the primitive underlying the first secret-handshake
scheme (Balfanz et al. [3]).

A trusted authority with master secret ``s`` issues to each identity
``id`` the private point ``S_id = s * H1(id)``.  Any two identities then
share, *without interaction*,

    K(id_A, id_B) = e(S_A, H1(id_B)) = e(H1(id_A), H1(id_B))^s
                  = e(H1(id_A), S_B),

which only the two of them (and the authority) can compute.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto import hashing
from repro.errors import ParameterError
from repro.pairing.curve import Curve, Point, curve_params
from repro.pairing.tate import tate_pairing


class SokAuthority:
    """The trusted authority (in Balfanz et al.: the group administrator)."""

    def __init__(self, curve: Optional[Curve] = None,
                 master_secret: Optional[int] = None, rng=None) -> None:
        self.curve = curve or curve_params("pf256")
        if master_secret is None:
            import random as _random
            rng = rng or _random
            master_secret = rng.randrange(1, self.curve.q)
        self._s = master_secret % self.curve.q
        if self._s == 0:
            raise ParameterError("master secret must be non-zero mod q")

    def identity_point(self, identity: str) -> Point:
        """Public: Q_id = H1(id)."""
        return self.curve.hash_to_point("sok-identity", identity)

    def extract(self, identity: str) -> Point:
        """Private key for ``identity``: S_id = s * H1(id)."""
        point = self.curve.multiply(self.identity_point(identity), self._s)
        assert point is not None
        return point


def shared_key(curve: Curve, my_secret: Point, peer_identity_point: Point,
               my_first: bool, my_id: str, peer_id: str) -> bytes:
    """The SOK pairwise key, symmetrized over the identity order.

    ``my_first`` orients the pairing so both sides hash the same value:
    e(S_A, Q_B) = e(Q_A, S_B) already holds by bilinearity, but the
    transcript binding (id_A, id_B) must be ordered consistently.
    """
    value = tate_pairing(curve, my_secret, peer_identity_point)
    first, second = (my_id, peer_id) if my_first else (peer_id, my_id)
    return hashing.digest("sok-shared-key", value.a, value.b, first, second)
