"""The (modified) Tate pairing via Miller's algorithm.

``tate_pairing(curve, P, Q)`` computes the reduced Tate pairing
``e(P, phi(Q))`` for P, Q in the order-q subgroup of E(F_p), where ``phi``
is the distortion map.  The result lives in the order-q subgroup of
F_p^2^* and satisfies bilinearity:

    e(aP, bQ) = e(P, Q)^(a*b)

Miller's loop evaluates the line functions of the double-and-add chain for
``q*P`` at ``phi(Q)``; the final exponentiation by ``(p^2 - 1) / q`` maps
the raw value into the q-th roots of unity (and washes out the equivalence
classes).
"""

from __future__ import annotations

from typing import Optional

from repro import metrics
from repro.errors import ParameterError
from repro.pairing.curve import Curve, Point
from repro.pairing.fields import Fp2


def _line(curve: Curve, a: Point, b: Point, at: Point) -> Fp2:
    """Evaluate at ``at`` the line through a and b (tangent if a == b),
    divided by the vertical through a + b.

    Uses the standard Miller-function update; verticals at intermediate
    steps are folded in."""
    p = curve.p
    if a.x == b.x and not (a.y + b.y).is_zero:
        # Tangent line at a (doubling step).
        slope = ((a.x * a.x).scale(3) + Fp2.one(p)) / a.y.scale(2)
    elif a.x == b.x:
        # Vertical line: x - a.x.
        return at.x - a.x
    else:
        slope = (b.y - a.y) / (b.x - a.x)
    # l(at) = (at.y - a.y) - slope * (at.x - a.x)
    numerator = (at.y - a.y) - slope * (at.x - a.x)
    summed = curve.add(a, b)
    if summed is None:
        return numerator
    # Divide by the vertical through the sum: at.x - summed.x
    return numerator / (at.x - summed.x)


def miller_loop(curve: Curve, p_point: Point, q_point: Point) -> Fp2:
    """f_{q, P}(Q) by double-and-add over the bits of the subgroup order."""
    if not (curve.contains(p_point) and curve.contains(q_point)):
        raise ParameterError("points not on curve")
    f = Fp2.one(curve.p)
    t: Optional[Point] = p_point
    order = curve.q
    for bit in bin(order)[3:]:  # Skip the leading 1.
        assert t is not None
        f = f * f * _line(curve, t, t, q_point)
        t = curve.double(t)
        if bit == "1":
            assert t is not None
            f = f * _line(curve, t, p_point, q_point)
            t = curve.add(t, p_point)
    return f


def tate_pairing(curve: Curve, p_point: Optional[Point],
                 q_point: Optional[Point]) -> Fp2:
    """The modified reduced Tate pairing e(P, phi(Q)).

    Both arguments are order-q points of E(F_p); the distortion map is
    applied to the second internally.  Returns 1 for infinity inputs.
    """
    metrics.count_pairing()
    if p_point is None or q_point is None:
        return Fp2.one(curve.p)
    distorted = curve.distort(q_point)
    raw = miller_loop(curve, p_point, distorted)
    if raw.is_zero:
        raise ParameterError("degenerate Miller value")
    exponent = (curve.p * curve.p - 1) // curve.q
    return raw ** exponent
