"""The Appendix-A experiments, run empirically.

Every game returns a :class:`GameResult` with the adversary's measured win
rate; for the guessing games the relevant quantity is the *advantage*
(|rate - 1/2|).  A correct implementation drives every adversary advantage
to ~0 — except where the paper says otherwise (scheme 1 has no
self-distinction; the strawman baselines fail their respective games),
and those expected failures are part of benchmark E5/E12's output.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.framework import GcdFramework
from repro.core.handshake import HandshakePolicy, run_handshake
from repro.core.member import GcdMember
from repro.core.transcript import HandshakeEntry, HandshakeTranscript
from repro.crypto import symmetric
from repro.crypto.cramer_shoup import CramerShoup
from repro.security.adversaries import (
    Impostor,
    RevokedInsider,
    StolenKeyImpostor,
    TranscriptDistinguisher,
)


@dataclass
class GameResult:
    """Outcome of one empirical experiment."""

    name: str
    trials: int
    wins: int

    @property
    def rate(self) -> float:
        return self.wins / self.trials if self.trials else 0.0

    @property
    def advantage(self) -> float:
        """Distance from blind guessing (for distinguishing games)."""
        return abs(self.rate - 0.5)

    def __str__(self) -> str:
        return (f"{self.name}: {self.wins}/{self.trials} "
                f"(rate {self.rate:.2f}, adv {self.advantage:.2f})")


# ---------------------------------------------------------------------------
# Resistance to impersonation (Experiment RIA).
# ---------------------------------------------------------------------------


def impersonation_game(honest: Sequence[GcdMember], trials: int,
                       rng: random.Random,
                       policy: Optional[HandshakePolicy] = None,
                       roles: int = 1) -> GameResult:
    """A credential-less adversary (possibly playing several roles) tries
    to convince honest members it belongs.  Win: any honest participant
    accepts the full handshake."""
    wins = 0
    for _ in range(trials):
        adversaries = [Impostor(rng=rng) for _ in range(roles)]
        outcomes = run_handshake(list(honest) + adversaries, policy, rng)
        if any(o.success for o in outcomes[:len(honest)]):
            wins += 1
    return GameResult("impersonation", trials, wins)


def stolen_key_game(honest: Sequence[GcdMember], leaked_key: bytes,
                    trials: int, rng: random.Random,
                    policy: Optional[HandshakePolicy] = None) -> GameResult:
    """Variant: the outsider knows the CGKD key but has no credential —
    it survives Phase II yet must still fail Phase III."""
    wins = 0
    for _ in range(trials):
        adversary = StolenKeyImpostor(leaked_key, rng=rng)
        outcomes = run_handshake(list(honest) + [adversary], policy, rng)
        if any(o.success for o in outcomes[:len(honest)]):
            wins += 1
    return GameResult("impersonation/stolen-cgkd-key", trials, wins)


def revoked_insider_game(framework: GcdFramework,
                         honest: Sequence[GcdMember],
                         revoked: GcdMember,
                         trials: int, rng: random.Random,
                         policy: Optional[HandshakePolicy] = None) -> GameResult:
    """The Section 3 dual-revocation attack: a revoked member with a
    leaked current group key replays its stale credential."""
    leaked = framework.authority.group_key()
    wins = 0
    for _ in range(trials):
        adversary = RevokedInsider(revoked, leaked)
        outcomes = run_handshake(list(honest) + [adversary], policy, rng)
        if any(o.success for o in outcomes[:len(honest)]):
            wins += 1
    return GameResult("impersonation/revoked-insider", trials, wins)


# ---------------------------------------------------------------------------
# Resistance to detection / indistinguishability to eavesdroppers.
# ---------------------------------------------------------------------------


def _simulated_transcript(reference: HandshakeTranscript,
                          tracing_pk, rng: random.Random) -> HandshakeTranscript:
    """The simulator of the RDA/INDeav experiments: decoys drawn from the
    ciphertext spaces, with shapes matching the reference session."""
    entries = []
    for entry in reference.entries:
        theta = symmetric.random_ciphertext(
            len(entry.theta) - symmetric.ciphertext_overhead(), rng
        )
        delta = CramerShoup.random_ciphertext(tracing_pk, rng).as_tuple()
        entries.append(HandshakeEntry(entry.index, theta, delta))
    sid = rng.getrandbits(256).to_bytes(32, "big")
    return HandshakeTranscript(sid=sid, entries=tuple(entries))


def eavesdropper_game(framework: GcdFramework, members: Sequence[GcdMember],
                      trials: int, rng: random.Random,
                      policy: Optional[HandshakePolicy] = None) -> GameResult:
    """INDeav: an outside observer (no session keys) gets either a real
    successful handshake transcript or a simulated one, and guesses."""
    distinguisher = TranscriptDistinguisher()  # no keys
    tracing_pk = framework.authority.public_info().tracing_public_key
    wins = 0
    for _ in range(trials):
        outcomes = run_handshake(list(members), policy, rng)
        real = outcomes[0].transcript
        fake = _simulated_transcript(real, tracing_pk, rng)
        bit = rng.randrange(2)
        challenge = real if bit == 0 else fake
        other = fake if bit == 0 else real
        # Concrete guess rule: call "real" whichever transcript shares more
        # structure with itself across entries (any repeated feature).
        score_c = len(distinguisher.features(challenge))
        score_o = len(distinguisher.features(other))
        guess = 0 if score_c >= score_o else 1
        if guess == bit:
            wins += 1
    return GameResult("indistinguishability-to-eavesdroppers", trials, wins)


def detection_game(framework: GcdFramework, members: Sequence[GcdMember],
                   trials: int, rng: random.Random,
                   policy: Optional[HandshakePolicy] = None) -> GameResult:
    """RDA: the adversary *participates* (so it sees Phase II/III up close)
    against either real members or simulators, then guesses which."""
    tracing_pk = framework.authority.public_info().tracing_public_key
    wins = 0
    for _ in range(trials):
        bit = rng.randrange(2)
        adversary = Impostor(rng=rng)
        if bit == 0:
            outcomes = run_handshake(list(members) + [adversary], policy, rng)
            transcript = outcomes[0].transcript
        else:
            outcomes = run_handshake(
                [Impostor(f"sim{i}", rng=rng) for i in range(len(members))]
                + [adversary],
                policy, rng,
            )
            transcript = outcomes[0].transcript
        if transcript is None:
            guess = rng.randrange(2)
        else:
            features = TranscriptDistinguisher().features(transcript)
            # Adversary's rule: anything that looks non-random says "real".
            guess = 0 if len(features) != 2 * len(transcript.entries) else rng.randrange(2)
        if guess == bit:
            wins += 1
    return GameResult("resistance-to-detection", trials, wins)


# ---------------------------------------------------------------------------
# Unlinkability.
# ---------------------------------------------------------------------------


def unlinkability_game(framework: GcdFramework, target: GcdMember,
                       decoy: GcdMember, fillers: Sequence[GcdMember],
                       trials: int, rng: random.Random,
                       policy: Optional[HandshakePolicy] = None) -> GameResult:
    """The adversary is itself a group member participating in both
    sessions (it knows k' and can decrypt every theta); it must decide
    whether the unknown slot held the same member twice."""
    adversary = fillers[0]
    wins = 0
    for _ in range(trials):
        bit = rng.randrange(2)
        second = target if bit == 0 else decoy
        o1 = run_handshake([target, adversary] + list(fillers[1:]), policy, rng)
        o2 = run_handshake([second, adversary] + list(fillers[1:]), policy, rng)
        t1, t2 = o1[1].transcript, o2[1].transcript
        # The inside adversary participated in both sessions, so it holds
        # both raw k' values and can decrypt every theta.
        keys = [k for k in (o1[1].k_prime, o2[1].k_prime) if k]
        distinguisher = TranscriptDistinguisher(keys)
        guess = 0 if distinguisher.linked(t1, t2) else rng.randrange(2)
        if guess == bit:
            wins += 1
    return GameResult("unlinkability", trials, wins)


def credential_reuse_unlinkability(framework: GcdFramework,
                                   target: GcdMember, peer: GcdMember,
                                   sessions: int, rng: random.Random,
                                   policy: Optional[HandshakePolicy] = None) -> GameResult:
    """Reusable-credential check: run the *same* member through many
    sessions and test that an insider distinguisher links none of them
    (contrast: Balfanz/CJT pseudonym reuse links instantly; see E7)."""
    transcripts: List[HandshakeTranscript] = []
    keys: List[bytes] = []
    for _ in range(sessions):
        outcomes = run_handshake([target, peer], policy, rng)
        transcripts.append(outcomes[1].transcript)
        keys.append(outcomes[1].k_prime or b"")
    wins = 0
    trials = 0
    for i in range(sessions):
        for j in range(i + 1, sessions):
            trials += 1
            distinguisher = TranscriptDistinguisher(keys)
            if distinguisher.linked(transcripts[i], transcripts[j]):
                wins += 1
    return GameResult("credential-reuse-linkability", trials, wins)


def full_unlinkability_game(framework: GcdFramework, target: GcdMember,
                            decoy: GcdMember, adversary_peer: GcdMember,
                            trials: int, rng: random.Random,
                            policy: Optional[HandshakePolicy] = None) -> GameResult:
    """Full-unlinkability (Appendix A): the adversary has *corrupted the
    target* — it holds the member's entire credential — participated in a
    first session with the target, and must decide whether a second
    session also involved the target.

    This is the experiment that separates Theorem 1 from Theorem 3: with
    ACJT (full-anonymity) the corrupted state gives no linking test, so
    the adversary stays at chance; with the KTY variant the corrupted
    tracing trapdoor ``x`` lets the adversary test ``T4 == T5^x`` on any
    decrypted signature — which is exactly why Theorems 2/3 claim only
    plain unlinkability.
    """
    from repro.crypto.modmath import mexp
    from repro.gsig.kty import KtyCredential

    credential = target.credential  # O_Corrupt(target)
    wins = 0
    for _ in range(trials):
        bit = rng.randrange(2)
        second = target if bit == 0 else decoy
        outcomes = run_handshake([second, adversary_peer], policy, rng)
        transcript = outcomes[1].transcript
        k_prime = outcomes[1].k_prime or b""
        # The inside adversary decrypts every theta it can and applies its
        # corruption-powered test.
        guess = rng.randrange(2)
        if isinstance(credential, KtyCredential) and k_prime:
            for entry in transcript.entries:
                try:
                    blob = symmetric.decrypt(k_prime, entry.theta)
                    from repro.core import wire as _wire
                    signature = _wire.signature_from_bytes(blob)
                except Exception:
                    continue
                n = target.info.gsig_public_key.n
                if mexp(signature.t5, credential.x, n) == signature.t4:
                    guess = 0
                    break
        if guess == bit:
            wins += 1
    return GameResult("full-unlinkability", trials, wins)


# ---------------------------------------------------------------------------
# Traceability / no-misattribution / self-distinction.
# ---------------------------------------------------------------------------


def traceability_game(framework: GcdFramework, members: Sequence[GcdMember],
                      trials: int, rng: random.Random,
                      policy: Optional[HandshakePolicy] = None) -> GameResult:
    """Adversary wins if a successful honest handshake produces a
    transcript the GA cannot fully trace."""
    wins = 0
    for _ in range(trials):
        outcomes = run_handshake(list(members), policy, rng)
        result = framework.trace(outcomes[0].transcript)
        expected = sorted(m.user_id for m in members)
        if sorted(result.identified) != expected:
            wins += 1
    return GameResult("traceability", trials, wins)


def misattribution_game(framework: GcdFramework, members: Sequence[GcdMember],
                        victim: GcdMember, trials: int, rng: random.Random,
                        policy: Optional[HandshakePolicy] = None) -> GameResult:
    """A coalition holding the GA's tracing internals splices the victim's
    past contributions into fresh transcripts; it wins if TraceUser ever
    attributes the new session to the victim (who did not take part)."""
    # Record a genuine session involving the victim.
    past = run_handshake([victim, members[0]], policy, rng)[0].transcript
    victim_entry = past.entries[0]
    wins = 0
    for _ in range(trials):
        outcomes = run_handshake(list(members), policy, rng)
        real = outcomes[0].transcript
        forged_entries = (victim_entry,) + real.entries[1:]
        forged = HandshakeTranscript(sid=real.sid, entries=forged_entries)
        result = framework.trace(forged, exhaustive=True)
        if victim.user_id in result.identified:
            wins += 1
    return GameResult("no-misattribution", trials, wins)


def self_distinction_game(members: Sequence[GcdMember], rogue: GcdMember,
                          roles: int, trials: int, rng: random.Random,
                          policy: HandshakePolicy) -> GameResult:
    """The rogue plays ``roles`` participants at once.  The adversary wins
    if any honest participant accepts the handshake as m distinct members."""
    wins = 0
    for _ in range(trials):
        lineup = list(members) + [rogue] * roles
        outcomes = run_handshake(lineup, policy, rng)
        if any(o.success for o in outcomes[:len(members)]):
            wins += 1
    return GameResult("self-distinction", trials, wins)
