"""Executable security experiments (paper Appendix A).

:mod:`repro.security.oracles` gives an adversary the Appendix-A oracle
interface (O_CG, O_AM, O_RU, O_HS, O_TU, O_Corrupt) over live frameworks;
:mod:`repro.security.adversaries` implements concrete attack strategies
(credential-less impostors, multi-role rogues, revoked members with leaked
keys, transcript distinguishers); :mod:`repro.security.games` runs each
experiment empirically and reports the adversary's measured advantage.

These are *empirical* instantiations of the games — they demonstrate that
the implementation resists each concrete attack (and that the strawman
baselines do not), complementing the paper's reduction proofs.
"""

from repro.security.games import GameResult  # noqa: F401
