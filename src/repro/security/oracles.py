"""The Appendix-A oracle interface.

:class:`OracleWorld` is the challenger's state: it creates groups on
demand (O_CG), admits honest or adversarial users (O_AM), revokes (O_RU),
runs handshakes (O_HS), traces (O_TU) and hands internal state to the
adversary (O_Corrupt) — while logging every corruption so the games can
evaluate their freshness conditions exactly as the experiments in the
paper specify.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.framework import GcdFramework
from repro.core.handshake import HandshakeOutcome, HandshakePolicy, run_handshake
from repro.core.member import GcdMember
from repro.core.transcript import HandshakeTranscript, TraceResult
from repro.errors import MembershipError, ParameterError
from repro.net.adversary import CorruptionLog


class OracleWorld:
    """Challenger state shared by all oracles."""

    def __init__(self, rng: Optional[random.Random] = None,
                 gsig_kind: str = "acjt", gsig_profile: str = "tiny") -> None:
        self.rng = rng or random.Random()
        self.gsig_kind = gsig_kind
        self.gsig_profile = gsig_profile
        self.frameworks: Dict[str, GcdFramework] = {}
        self.corruptions = CorruptionLog()
        self.handshakes: List[List[HandshakeOutcome]] = []

    # O_CG ------------------------------------------------------------------------

    def o_create_group(self, group_id: str) -> GcdFramework:
        if group_id in self.frameworks:
            raise ParameterError(f"group {group_id} already exists")
        framework = GcdFramework.create(
            group_id, gsig_kind=self.gsig_kind,
            gsig_profile=self.gsig_profile, rng=self.rng,
        )
        self.frameworks[group_id] = framework
        return framework

    # O_AM ------------------------------------------------------------------------

    def o_admit_member(self, group_id: str, user_id: str,
                       adversarial: bool = False) -> GcdMember:
        """Admit a user.  ``adversarial=True`` models O_AM(GA, U) for a
        user under the adversary's control: its secrets count as corrupt
        from the start."""
        member = self.frameworks[group_id].admit_member(user_id, self.rng)
        if adversarial:
            self.corruptions.corrupt_user(user_id)
        return member

    # O_RU ------------------------------------------------------------------------

    def o_remove_user(self, group_id: str, user_id: str) -> None:
        self.frameworks[group_id].remove_user(user_id)

    # O_HS ------------------------------------------------------------------------

    def o_handshake(self, participants: Sequence[object],
                    policy: Optional[HandshakePolicy] = None,
                    tamper=None) -> List[HandshakeOutcome]:
        outcomes = run_handshake(participants, policy, self.rng, tamper=tamper)
        self.handshakes.append(outcomes)
        return outcomes

    # O_TU ------------------------------------------------------------------------

    def o_trace(self, group_id: str,
                transcript: HandshakeTranscript) -> TraceResult:
        return self.frameworks[group_id].trace(transcript)

    # O_Corrupt ----------------------------------------------------------------------

    def o_corrupt_user(self, group_id: str, user_id: str) -> GcdMember:
        """Hand the member's full internal state to the adversary."""
        member = self.frameworks[group_id].member(user_id)
        self.corruptions.corrupt_user(user_id)
        return member

    def o_corrupt_ga(self, group_id: str, capability: str):
        """O_Corrupt(GA, _|_ ) / O_Corrupt(GA, T): expose the GA's admitting
        or tracing internals."""
        if capability not in ("admit", "trace"):
            raise ParameterError(f"unknown capability {capability!r}")
        authority = self.frameworks[group_id].authority
        self.corruptions.corrupt_ga(capability)
        if capability == "admit":
            return authority.gsig_manager
        return authority

    # Freshness bookkeeping ---------------------------------------------------------

    def user_is_fresh(self, user_id: str) -> bool:
        """True iff the adversary never obtained this user's secrets."""
        return not self.corruptions.is_corrupt(user_id)

    def revoke_corrupted(self, group_id: str) -> None:
        """Condition hygiene used by several experiments: every corrupted
        user must be revoked before the challenge phase."""
        framework = self.frameworks[group_id]
        for user_id in list(self.corruptions.corrupted_users):
            try:
                framework.remove_user(user_id)
            except MembershipError:
                pass
