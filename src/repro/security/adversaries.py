"""Concrete adversary strategies for the security games.

Each class duck-types the slice of :class:`repro.core.member.GcdMember`
that the handshake engine touches, so adversaries drop straight into
:func:`repro.core.handshake.run_handshake` as participants.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core import wire
from repro.core.member import GcdMember
from repro.core.transcript import HandshakeTranscript
from repro.crypto import symmetric
from repro.errors import RevocationError


class Impostor:
    """A credential-less outsider pretending to be a group member.

    It has no CGKD key (the engine falls back to random bytes, so its
    Phase-II MACs never verify for honest members) and no GSIG credential
    (its Phase-III contribution is garbage)."""

    def __init__(self, name: str = "impostor",
                 rng: Optional[random.Random] = None) -> None:
        self.user_id = name
        self._rng = rng or random.Random()

    @property
    def group_key(self) -> bytes:
        raise RevocationError("impostor holds no group key")

    def gsig_sign(self, message: bytes, rng=None, shield=None) -> bytes:
        return self._rng.getrandbits(4096).to_bytes(512, "big")

    def gsig_verify(self, message: bytes, blob: bytes,
                    expected_shield=None) -> bool:
        return False

    def distinction_shield(self, *context) -> int:
        return 2

    @property
    def supports_self_distinction(self) -> bool:
        return False


class StolenKeyImpostor(Impostor):
    """An outsider who somehow learned the CGKD group key but holds no
    GSIG credential — it can pass Phase II but not Phase III.  Used to show
    the layers are *independently* necessary."""

    def __init__(self, leaked_key: bytes, name: str = "stolen-key",
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(name, rng)
        self._leaked = leaked_key

    @property
    def group_key(self) -> bytes:
        return self._leaked


class RevokedInsider:
    """A revoked member handed the *current* CGKD group key by an unrevoked
    accomplice (the Section 3 attack on the single-revocation
    'optimization').  It reuses its stale GSIG credential, ignoring the
    local revoked flag — the dual-revocation design must still reject it."""

    def __init__(self, member: GcdMember, leaked_key: bytes) -> None:
        self.user_id = f"{member.user_id} (revoked, leaked key)"
        self._member = member
        self._leaked = leaked_key
        # The adversary obviously does not honour its own revocation flag.
        member.credential.revoked = False

    @property
    def group_key(self) -> bytes:
        return self._leaked

    def gsig_sign(self, message: bytes, rng=None, shield=None) -> bytes:
        return self._member.gsig_sign(message, rng, shield=shield)

    def gsig_verify(self, message: bytes, blob: bytes,
                    expected_shield=None) -> bool:
        return self._member.gsig_verify(message, blob, expected_shield)

    def distinction_shield(self, *context) -> int:
        return self._member.distinction_shield(*context)

    @property
    def supports_self_distinction(self) -> bool:
        return self._member.supports_self_distinction

    @property
    def credential(self):
        return self._member.credential

    @property
    def info(self):
        return self._member.info


class TranscriptDistinguisher:
    """A concrete distinguisher used by the detection / eavesdropper /
    unlinkability experiments: it compares every visible (and, when the
    adversary is an inside participant, every decryptable) value across
    two transcripts and bets "linked/real" whenever anything nontrivial
    coincides.

    This will not break DDH — but it *will* catch implementation bugs
    (reused randomness, deterministic blinding, leaked identifiers), which
    is what an empirical game can honestly test.
    """

    def __init__(self, k_primes: Optional[Sequence[bytes]] = None) -> None:
        self.k_primes = list(k_primes or [])

    # Feature extraction --------------------------------------------------------

    def features(self, transcript: HandshakeTranscript) -> Set[Tuple]:
        out: Set[Tuple] = set()
        for entry in transcript.entries:
            out.add(("theta", entry.theta))
            out.add(("delta", entry.delta))
            for key in self.k_primes:
                try:
                    blob = symmetric.decrypt(key, entry.theta)
                except Exception:
                    continue
                try:
                    signature = wire.signature_from_bytes(blob)
                except Exception:
                    out.add(("blob", blob))
                    continue
                for field_name, value in vars(signature).items():
                    if field_name.startswith("t") and isinstance(value, int):
                        out.add((field_name, value))
        return out

    def linked(self, first: HandshakeTranscript,
               second: HandshakeTranscript) -> bool:
        """Bet 'same member in both' iff any identifying feature repeats."""
        shared = {
            f for f in (self.features(first) & self.features(second))
            # The common shield T7 repeats by construction within a session
            # but differs across sessions; anything else repeating is a
            # genuine linkability leak.
            if f[0] != "t7"
        }
        return bool(shared)


def multi_role_participants(member: GcdMember, roles: int,
                            honest: Sequence[GcdMember]) -> List[object]:
    """The rogue-insider line-up for the self-distinction experiment: one
    credential playing ``roles`` participants among honest members."""
    return list(honest) + [member] * roles


class BdMitmSplitter:
    """The textbook man-in-the-middle against *raw* Burmester-Desmedt.

    The adversary partitions the m participants at ``cut`` (left = indices
    below it) and plays, towards each half, self-consistent virtual
    stand-ins for the other half: in round 0 it substitutes its own
    ``z = g^a`` values, and in round 1 it substitutes ``X`` values computed
    from each half's (tampered) view with its known exponents.  Every
    member of a half then completes the protocol with a *consistent* key —
    shared with the adversary — while the two halves hold different keys
    and nobody notices.  This is the attack the Fig. 5 remark concedes
    and GCD's Phase II defeats (benchmark E11).

    Use as the ``tamper`` callback of :func:`repro.dgka.base.run_locally`
    or :func:`repro.core.handshake.run_handshake`.
    """

    def __init__(self, group, m: int, cut: int,
                 rng: Optional[random.Random] = None) -> None:
        rng = rng or random.Random()
        self.group = group
        self.m = m
        self.cut = cut
        # Virtual exponents: a[side][slot] — the stand-in for `slot`
        # presented to `side` ("left"/"right").
        self._exponents: Dict[Tuple[str, int], int] = {}
        for slot in range(m):
            for side in ("left", "right"):
                if self._side_of(slot) != side:
                    self._exponents[(side, slot)] = rng.randrange(1, group.q)
        self._observed_z: Dict[int, int] = {}

    def _side_of(self, index: int) -> str:
        return "left" if index < self.cut else "right"

    def _view_z(self, side: str, slot: int) -> int:
        """Slot's z as seen by `side`: real if same side, virtual else."""
        if self._side_of(slot) == side:
            return self._observed_z[slot]
        return self.group.power_of_g(self._exponents[(side, slot)])

    def __call__(self, round_no: int, sender: int, receiver: int, payload):
        from repro.crypto.modmath import inverse, mexp
        sender_side = self._side_of(sender)
        receiver_side = self._side_of(receiver)
        if round_no == 0:
            if sender_side == receiver_side:
                self._observed_z[sender] = payload
                return payload
            # Cross-cut: substitute the virtual z for `sender` as
            # presented to the receiver's side.
            return self.group.power_of_g(
                self._exponents[(receiver_side, sender)]
            )
        if round_no == 1 and sender_side != receiver_side:
            # Substitute X_sender computed from the receiver side's view.
            p, m = self.group.p, self.m
            z_next = self._view_z(receiver_side, (sender + 1) % m)
            z_prev = self._view_z(receiver_side, (sender - 1) % m)
            ratio = (z_next * inverse(z_prev, p)) % p
            return mexp(ratio, self._exponents[(receiver_side, sender)], p)
        return payload
