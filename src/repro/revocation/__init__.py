"""Epoch-based revocation service (repro.revocation).

The paper's scheme 1 revokes through the CL dynamic accumulator, whose
naive maintenance is the scaling wall for a large deployment: every
revocation costs the manager a trapdoor exponentiation plus a full CGKD
rekey, and every member a Bezout witness update *per revocation*.  This
package batches revocations into **epochs**:

* :class:`~repro.revocation.service.RevocationService` queues revocations
  and seals them into one epoch — ONE accumulator trapdoor
  exponentiation (product of the deleted primes) and ONE CGKD rekey for
  the whole batch — while keeping a bounded delta log so members that
  slept through epochs can catch up with a single coalesced witness
  update (or a manager-assisted fresh witness past the horizon).
* :mod:`~repro.revocation.model` is the exact witness-maintenance cost
  model (sequential vs batched vs lazy, in counted modexps) with a
  counter-only churn simulator for 1e4–1e6 member populations — the same
  validate-against-real-books idiom as :mod:`repro.load.model`.

Metrics: ``rev:*`` counters (docs/OBSERVABILITY.md) and the
:func:`stats` snapshot embedded in service/cluster STATUS replies.
"""

from repro.revocation.service import (
    EpochDelta,
    RevocationService,
    registered_services,
    reset_registry,
    stats,
)

__all__ = [
    "EpochDelta",
    "RevocationService",
    "registered_services",
    "reset_registry",
    "stats",
]
