"""The epoch-based revocation service.

One :class:`RevocationService` fronts one ACJT-backed
:class:`~repro.core.framework.GcdFramework`: admissions and revocations
flow through it so it can keep a complete, bounded **delta log** — one
:class:`EpochDelta` per accumulator epoch — which is what makes lazy
witness refresh possible.

Lifecycle of a revocation::

    svc.revoke("u3")          # queued; the member still verifies
    svc.revoke("u7")
    svc.seal_epoch()          # ONE trapdoor modexp + ONE CGKD rekey
                              # for the whole batch; delta logged and
                              # broadcast to online members

Sealing is where revocation takes effect — the queue-until-seal latency
is the price of batching and is the deployment's epoch cadence to choose
(docs/PERFORMANCE.md).  Joins post immediately, exactly as before; the
service records their deltas so a replayed log is gap-free.

Lazy refresh (:meth:`RevocationService.refresh`) brings a member that
slept through ``E`` epochs current with a single coalesced witness
update (at most 3 modexps + 1 egcd, via
:meth:`~repro.gsig.acjt.AcjtCredential.apply_epochs`) when the log still
covers its gap, and falls back to a manager-assisted fresh witness (one
trapdoor modexp) past the horizon.  Either path rotates the accel
warm-rejoin fixed-base table exactly once.

A module registry mirrors :func:`repro.accel.stats`: services register
on construction and :func:`stats` aggregates epoch / pending / revoked
counts for the service STATUS channel and ``repro top``.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import metrics
from repro.core.framework import GcdFramework
from repro.core.member import GcdMember
from repro.errors import ParameterError, RevocationError
from repro.gsig.acjt import AcjtCredential, AcjtManager

#: Default number of epoch deltas retained for replay; a member more than
#: this many epochs behind gets a manager-reissued witness instead.
DEFAULT_HORIZON = 64


@dataclass(frozen=True)
class EpochDelta:
    """One accumulator epoch's worth of change — the compact record a
    returning member replays (and online members receive piggybacked on
    the CGKD rekey path as a ``kind="epoch"`` state update)."""

    epoch: int                     # accumulator epoch AFTER this delta
    added: Tuple[int, ...]         # primes accumulated (joins)
    deleted: Tuple[int, ...]       # primes removed (sealed revocations)
    acc_value: int                 # accumulator value after the delta
    revoked_users: Tuple[str, ...] = ()


class RevocationService:
    """Queue revocations, seal them into batched epochs, refresh sleepers."""

    def __init__(self, framework: GcdFramework, *,
                 horizon: int = DEFAULT_HORIZON, name: Optional[str] = None,
                 register: bool = True) -> None:
        manager = framework.authority.gsig_manager
        if not isinstance(manager, AcjtManager):
            raise ParameterError(
                "the revocation service needs the accumulator-backed ACJT "
                "scheme (KTY revokes via the CRL; see KtyManager.revoke_batch)")
        if horizon < 1:
            raise ParameterError("horizon must be >= 1")
        self._fw = framework
        self._gsig: AcjtManager = manager
        self._horizon = horizon
        self._pending: List[str] = []
        self._log: List[EpochDelta] = []
        self._epochs_sealed = 0
        self._revoked_total = 0
        self.name = name or framework.group_id
        if register:
            _register(self)

    # Introspection -----------------------------------------------------------

    @property
    def framework(self) -> GcdFramework:
        return self._fw

    @property
    def horizon(self) -> int:
        return self._horizon

    @property
    def epoch(self) -> int:
        """The current accumulator epoch."""
        return self._gsig.member_view().acc_epoch

    def pending(self) -> Tuple[str, ...]:
        return tuple(self._pending)

    def delta_log(self) -> Tuple[EpochDelta, ...]:
        return tuple(self._log)

    def stats(self) -> Dict[str, int]:
        return {
            "epoch": self.epoch,
            "pending": len(self._pending),
            "epochs_sealed": self._epochs_sealed,
            "revoked": self._revoked_total,
            "log_len": len(self._log),
            "horizon": self._horizon,
        }

    # Membership --------------------------------------------------------------

    def admit(self, user_id: str, rng: Optional[random.Random] = None,
              enroll: bool = True):
        """Admit through the service so the join lands in the delta log.

        ``enroll=True`` runs the full framework admission (board-polling
        :class:`GcdMember` handle); ``enroll=False`` admits through the
        authority (the join update is still posted for everyone else) but
        returns the bare credential without a board-polling handle — how
        tests and benches model a member that will sleep through epochs
        instead of polling."""
        if enroll:
            result = self._fw.admit_member(user_id, rng)
        else:
            package = self._fw.authority.admit_member(user_id, rng)
            result = package.gsig_credential
            self._fw.update_all()
        view = self._gsig.member_view()
        e = self._gsig.certificate_prime(user_id)
        self._record(EpochDelta(
            epoch=view.acc_epoch, added=(e,), deleted=(),
            acc_value=view.acc_value,
        ))
        return result

    def revoke(self, user_id: str) -> int:
        """Queue ``user_id`` for the next epoch; returns the pending count.

        The member keeps verifying until :meth:`seal_epoch` — queue-until-
        seal latency is the documented cost of batching."""
        if not self._gsig.is_member(user_id):
            raise RevocationError(f"unknown or already revoked member {user_id}")
        if user_id in self._pending:
            raise RevocationError(f"{user_id} already queued for revocation")
        self._pending.append(user_id)
        metrics.bump("rev:queued")
        return len(self._pending)

    def seal_epoch(self) -> Optional[EpochDelta]:
        """Apply every queued revocation as ONE epoch.

        One accumulator trapdoor exponentiation (product of the deleted
        primes), one CGKD rekey, one broadcast epoch update — vs ``k``
        of each sequentially.  Returns the sealed delta, or ``None`` when
        nothing was pending (no epoch bump for an empty seal)."""
        if not self._pending:
            return None
        ids, self._pending = self._pending, []
        primes = tuple(self._gsig.certificate_prime(u) for u in ids)
        # Through the authority, not the framework facade: a sealed batch
        # may include members admitted without a board-polling handle.
        with metrics.scope("rev:seal"):
            self._fw.authority.remove_users(ids)
            self._fw.update_all()
        view = self._gsig.member_view()
        delta = EpochDelta(
            epoch=view.acc_epoch, added=(), deleted=primes,
            acc_value=view.acc_value, revoked_users=tuple(ids),
        )
        self._record(delta)
        self._epochs_sealed += 1
        self._revoked_total += len(ids)
        # k sequential revokes cost the manager k trapdoor modexps; the
        # sealed epoch cost exactly one.
        metrics.bump("rev:manager-modexp-saved", len(ids) - 1)
        return delta

    # Lazy refresh -------------------------------------------------------------

    def refresh(self, member) -> str:
        """Bring a sleeping member current.  Returns what happened:

        * ``"current"``  — nothing to do;
        * ``"replayed"`` — delta log replayed: one coalesced witness
          update, ≤ 3 modexps however many epochs were missed;
        * ``"reissued"`` — gap beyond the horizon (or log truncated):
          manager-assisted fresh witness, one trapdoor modexp;
        * ``"revoked"``  — the member itself was revoked while away.

        Accepts an :class:`AcjtCredential` or a :class:`GcdMember` (whose
        credential is refreshed in place).  Either path rotates the accel
        warm-rejoin fixed-base table exactly once per refresh."""
        credential = member.credential if isinstance(member, GcdMember) else member
        if not isinstance(credential, AcjtCredential):
            raise ParameterError("refresh needs an ACJT credential")
        if credential.revoked:
            return "revoked"
        view = self._gsig.member_view()
        if credential.acc_epoch >= view.acc_epoch:
            return "current"
        behind = [d for d in self._log if d.epoch > credential.acc_epoch]
        gap_covered = (
            behind
            and behind[0].epoch == credential.acc_epoch + 1
            and behind[-1].epoch == view.acc_epoch
            and len(behind) <= self._horizon
        )
        if gap_covered:
            credential.apply_epochs(behind)
            metrics.bump("rev:lazy-replays")
            if credential.revoked:
                self._mark_member_revoked(member)
                return "revoked"
            return "replayed"
        try:
            witness = self._gsig.fresh_witness(credential.user_id)
        except RevocationError:
            credential.revoked = True
            self._mark_member_revoked(member)
            return "revoked"
        credential.install_fresh_witness(witness, view.acc_value, view.acc_epoch)
        metrics.bump("rev:fresh-witness")
        return "reissued"

    # Internals ----------------------------------------------------------------

    @staticmethod
    def _mark_member_revoked(member) -> None:
        if isinstance(member, GcdMember):
            member.revoked = True

    def _record(self, delta: EpochDelta) -> None:
        if self._log and delta.epoch <= self._log[-1].epoch:
            raise ParameterError("delta log epochs must increase")
        self._log.append(delta)
        if len(self._log) > self._horizon:
            del self._log[: len(self._log) - self._horizon]


# ---------------------------------------------------------------------------
# Module registry (the accel.stats() idiom): services register themselves so
# the service/cluster STATUS channel and `repro top` can surface epoch and
# pending-revocation counts without holding framework references.
# ---------------------------------------------------------------------------

_REG_LOCK = threading.Lock()
_REGISTRY: List[RevocationService] = []


def _register(service: RevocationService) -> None:
    with _REG_LOCK:
        _REGISTRY.append(service)


def registered_services() -> Tuple[RevocationService, ...]:
    with _REG_LOCK:
        return tuple(_REGISTRY)


def reset_registry() -> None:
    """Drop all registered services (test isolation)."""
    with _REG_LOCK:
        _REGISTRY.clear()


def stats() -> Dict[str, int]:
    """Aggregate snapshot for STATUS embedding.

    ``epoch`` is the max over registered services (each tracks its own
    group); counts are sums.  All zeros when no service is registered —
    the STATUS section is then omitted."""
    out = {"services": 0, "epoch": 0, "pending": 0,
           "epochs_sealed": 0, "revoked": 0}
    for service in registered_services():
        snap = service.stats()
        out["services"] += 1
        out["epoch"] = max(out["epoch"], snap["epoch"])
        out["pending"] += snap["pending"]
        out["epochs_sealed"] += snap["epochs_sealed"]
        out["revoked"] += snap["revoked"]
    return out


__all__ = [
    "DEFAULT_HORIZON",
    "EpochDelta",
    "RevocationService",
    "registered_services",
    "reset_registry",
    "stats",
]
