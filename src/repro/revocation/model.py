"""Exact witness-maintenance cost model: sequential vs batched vs lazy.

Every number here is in **counted modexps** — the same ledger
:func:`repro.crypto.modmath.mexp` feeds — not wall-clock, so the model
can be validated *exactly* against measured books at small scale (the
:mod:`repro.load.model` idiom) and then extrapolated to 1e4–1e6 members
with plain integer arithmetic (:func:`simulate_churn`).

The closed forms, straight from the accumulator algebra:

===============================  =========================  ==================
operation                        sequential (k revocations) batched epoch
===============================  =========================  ==================
manager (trapdoor deletions)     ``k``                      ``1``
per online member (witness)      ``2k``                     ``2``
CGKD rekey broadcasts            ``k``                      ``1``
===============================  =========================  ==================

Member-side: one deletion update is the Bezout pair ``w^a * v'^b`` — two
counted modexps (:func:`~repro.crypto.accumulator
.update_witness_after_delete`); the coalesced epoch update
(:func:`~repro.crypto.accumulator.update_witness_epoch`) pays the same
two for ANY number of deletions (plus one more if the window also
contains additions).  An addition update is one modexp.

Lazy refresh over ``E`` missed epochs totalling ``A`` additions and
``D`` deletions therefore costs

* replayed one-by-one:  ``A + 2*D`` member modexps,
* coalesced (in-horizon): ``(1 if A else 0) + (2 if D else 0)`` — at
  most **3**, independent of ``E``, ``A`` and ``D``,
* reissued (past horizon): **0** member modexps, 1 manager trapdoor
  modexp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ParameterError


# ---------------------------------------------------------------------------
# Closed forms (exact counted-modexp costs).
# ---------------------------------------------------------------------------


def manager_modexps(revocations: int, *, batched: bool) -> int:
    """Manager trapdoor exponentiations to revoke ``revocations`` members:
    one per deletion sequentially, one per *epoch* batched."""
    if revocations < 0:
        raise ParameterError("revocations must be >= 0")
    if revocations == 0:
        return 0
    return 1 if batched else revocations


def member_update_modexps(additions: int, deletions: int, *,
                          coalesced: bool) -> int:
    """Modexps one member pays to absorb a window of churn.

    Sequential replay: 1 per addition + 2 per deletion.  Coalesced: the
    products of the added/deleted primes are formed first (integer
    multiplications, not modexps), so the whole window costs at most 3.
    """
    if additions < 0 or deletions < 0:
        raise ParameterError("churn counts must be >= 0")
    if coalesced:
        return (1 if additions else 0) + (2 if deletions else 0)
    return additions + 2 * deletions


def lazy_refresh_modexps(additions: int, deletions: int, *,
                         within_horizon: bool) -> Dict[str, int]:
    """Split cost of one lazy refresh: member-side and manager-side."""
    if within_horizon:
        return {
            "member": member_update_modexps(additions, deletions,
                                            coalesced=True),
            "manager": 0,
        }
    return {"member": 0, "manager": 1}  # fresh witness: v^{1/e}


def rekey_broadcasts(revocations: int, *, batched: bool) -> int:
    """CGKD rekey messages emitted for ``revocations`` removals (LKH
    replaces the union of the removed paths once when batched)."""
    if revocations == 0:
        return 0
    return 1 if batched else revocations


# ---------------------------------------------------------------------------
# Counter-only churn simulation (1e4 – 1e6 members).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnSpec:
    """One simulated churn run.

    ``members`` online members each absorb every epoch's delta;
    ``sleepers`` members instead sleep through all ``epochs`` and
    lazily refresh once at the end (in-horizon iff
    ``epochs <= horizon``)."""

    members: int
    epochs: int
    revocations_per_epoch: int
    joins_per_epoch: int = 0
    sleepers: int = 0
    horizon: int = 64

    def __post_init__(self) -> None:
        if self.members <= 0 or self.epochs <= 0:
            raise ParameterError("members and epochs must be positive")
        if self.revocations_per_epoch < 0 or self.joins_per_epoch < 0:
            raise ParameterError("churn rates must be >= 0")
        if self.sleepers < 0 or self.sleepers > self.members:
            raise ParameterError("sleepers must be within the population")


def simulate_churn(spec: ChurnSpec) -> Dict[str, object]:
    """Total modexp books for the run under both strategies.

    Pure integer arithmetic — no bignums, no RSA group — so a 1e6-member
    simulation is instant; the closed forms it multiplies out are the
    ones the bench validates against real measured books at small scale.
    """
    k = spec.revocations_per_epoch
    j = spec.joins_per_epoch
    online = spec.members - spec.sleepers

    seq_manager = spec.epochs * manager_modexps(k, batched=False)
    bat_manager = spec.epochs * manager_modexps(k, batched=True)

    per_member_seq = spec.epochs * member_update_modexps(j, k, coalesced=False)
    per_member_bat = spec.epochs * member_update_modexps(j, k, coalesced=True)
    seq_members = online * per_member_seq
    bat_members = online * per_member_bat

    lazy = lazy_refresh_modexps(
        spec.epochs * j, spec.epochs * k,
        within_horizon=spec.epochs <= spec.horizon,
    )

    return {
        "spec": {
            "members": spec.members,
            "epochs": spec.epochs,
            "revocations_per_epoch": k,
            "joins_per_epoch": j,
            "sleepers": spec.sleepers,
            "horizon": spec.horizon,
        },
        "sequential": {
            "manager_modexps": seq_manager,
            "member_modexps_each": per_member_seq,
            "member_modexps_total": seq_members,
            "rekey_broadcasts": spec.epochs * rekey_broadcasts(k, batched=False),
            "total_modexps": seq_manager + seq_members,
        },
        "batched": {
            "manager_modexps": bat_manager,
            "member_modexps_each": per_member_bat,
            "member_modexps_total": bat_members,
            "rekey_broadcasts": spec.epochs * rekey_broadcasts(k, batched=True),
            "total_modexps": bat_manager + bat_members,
        },
        "lazy_refresh": {
            "per_sleeper_member_modexps": lazy["member"],
            "per_sleeper_manager_modexps": lazy["manager"],
            "sleepers_total_modexps":
                spec.sleepers * (lazy["member"] + lazy["manager"]),
            "within_horizon": spec.epochs <= spec.horizon,
        },
        "speedup_total":
            (seq_manager + seq_members) / max(1, bat_manager + bat_members),
    }


__all__ = [
    "ChurnSpec",
    "lazy_refresh_modexps",
    "manager_modexps",
    "member_update_modexps",
    "rekey_broadcasts",
    "simulate_churn",
]
