"""SLO report: fold an open-loop run into the numbers a capacity claim
needs.

The report combines three measurement planes:

* **client-side** — per-room :class:`~repro.load.generator.RoomResult`
  timestamps and the driver recorder's ``load:*`` counters and
  ``load:admission-latency`` / ``load:e2e-latency`` histograms;
* **relay-side** — the aggregated STATUS snapshot of the cluster (or
  single server), carrying the merged ``svc:relay-latency`` percentiles
  and the per-reason BUSY-shed counters (``svc:busy:at-capacity``,
  ``svc:busy:draining``, ``svc-cluster:busy:no-live-shards``);
* **model** — the symbolic prediction for the run's completed-room mix,
  validated room-by-room, plus the inverted capacity estimate.

Everything in the returned document is JSON-able; ``format_report``
renders the human summary the CLI prints.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro import metrics
from repro.load.generator import LoadConfig, RoomResult
from repro.load.model import (
    BYTES_TOLERANCE,
    HandshakeModel,
    backend,
    capacity_report,
)

#: Histograms the report lifts from the driver's recorder.
_DRIVER_HISTOGRAMS = ("load:admission-latency", "load:e2e-latency")

#: Per-reason shed counters surfaced from the relay's STATUS document.
BUSY_COUNTERS = (
    "svc:busy:at-capacity",
    "svc:busy:draining",
    "svc-cluster:busy:draining",
    "svc-cluster:busy:no-live-shards",
)


def build_report(config: LoadConfig, results: Sequence[RoomResult],
                 *, status: Optional[Mapping[str, object]] = None,
                 recorder: Optional[metrics.Recorder] = None,
                 shards: int = 1,
                 max_rooms_per_shard: Optional[int] = None,
                 cores: int = 1,
                 timeline: Optional[Mapping[str, object]] = None,
                 ) -> Dict[str, object]:
    """Assemble the SLO report document for one finished run.

    ``timeline`` (optional) is a
    :meth:`repro.obs.telemetry.TimeSeries.timeline_doc` built from STATUS
    samples taken *during* the run — per-interval rooms/s, sheds/s,
    retry rate and relay percentiles, answering where inside the run the
    tail latency went rather than only what it averaged."""
    recorder = recorder if recorder is not None else \
        metrics.current_recorder()
    totals = recorder.total()
    hists = recorder.histograms()

    completed = [r for r in results if r.outcome == "completed"]
    retryable = [r for r in results if r.outcome == "retryable"]
    failed = [r for r in results if r.outcome == "failed"]
    span_s = max((r.completed_s for r in completed if r.completed_s),
                 default=0.0)
    throughput = (len(completed) / span_s) if span_s > 0 else 0.0

    rooms_by_m: Dict[int, int] = {}
    for result in completed:
        rooms_by_m[result.m] = rooms_by_m.get(result.m, 0) + 1

    model = HandshakeModel(config.scheme)
    predicted = model.predict(rooms_by_m, shards=shards)
    measured = _measured_totals(completed)
    mismatches: List[str] = [line for r in results for line in r.mismatches]

    busy: Dict[str, int] = {}
    relay_latency = None
    if status is not None:
        counters = status.get("counters") or {}
        for name in BUSY_COUNTERS:
            if counters.get(name):
                busy[name] = counters[name]
        relay_latency = (status.get("histograms") or {}).get(
            "svc:relay-latency")

    mean_lifetime = None
    e2e = hists.get("load:e2e-latency")
    if e2e is not None and e2e.total:
        mean_lifetime = e2e.sum / e2e.total
    capacity = capacity_report(
        scheme=config.scheme, mean_m=config.mix.mean_m(), shards=shards,
        max_rooms_per_shard=max_rooms_per_shard,
        mean_room_lifetime_s=mean_lifetime,
        measured_modexp=measured.get("modexp", 0),
        measured_busy_s=span_s, cores=cores)

    extra = totals.extra
    doc: Dict[str, object] = {
        "offered": {
            "process": config.process,
            "rate_rooms_per_s": config.rate,
            "duration_s": config.duration,
            "mix": config.mix.describe(),
            "scheme": config.scheme,
            "seed": config.seed,
            "arrivals": extra.get("load:arrivals", 0),
            "late_arrivals": extra.get("load:late-arrivals", 0),
        },
        "achieved": {
            "completed": len(completed),
            "retryable": len(retryable),
            "failed": len(failed),
            "throughput_rooms_per_s": round(throughput, 4),
            "span_s": round(span_s, 4),
            "rooms_by_m": {str(m): n
                           for m, n in sorted(rooms_by_m.items())},
        },
        "slo": {
            name: hists[name].summary()
            for name in _DRIVER_HISTOGRAMS if name in hists
        },
        "relay": {
            "relay_latency": relay_latency,
            "busy": busy,
            "shed_total": sum(busy.values()),
        },
        "retries": {
            name.removeprefix("svc-client:"): value
            for name, value in sorted(extra.items())
            if name.startswith("svc-client:") and value
        },
        "model": {
            "backend": backend(),
            "expressions_per_party": model.expressions(),
            "predicted_totals": predicted,
            "measured_totals": measured,
            "rooms_validated": len(completed),
            "mismatches": mismatches,
            "counts_exact": not mismatches,
            "bytes_tolerance": BYTES_TOLERANCE,
        },
        "capacity": capacity,
        "rooms": [r.as_dict() for r in results],
    }
    if timeline is not None:
        doc["timeline"] = dict(timeline)
    return doc


def _measured_totals(completed: Sequence[RoomResult]) -> Dict[str, int]:
    """Sum the per-party ``hs:<i>`` books of every completed room — the
    measured counterpart of the model's aggregate prediction."""
    totals = {"modexp": 0, "messages_sent": 0, "messages_received": 0,
              "bytes_sent": 0, "bytes_received": 0}
    for result in completed:
        for i in range(result.m):
            party = result.books.get(f"hs:{i}") or {}
            for name in totals:
                totals[name] += int(party.get(name, 0))
    return totals


def format_report(doc: Mapping[str, object]) -> str:
    """Human rendering of :func:`build_report` (the CLI output)."""
    offered = doc["offered"]
    achieved = doc["achieved"]
    model = doc["model"]
    relay = doc["relay"]
    capacity = doc["capacity"]
    lines = [
        "open-loop load report",
        "=====================",
        (f"offered : {offered['process']} @ "
         f"{offered['rate_rooms_per_s']:g} rooms/s for "
         f"{offered['duration_s']:g}s, mix {offered['mix']}, "
         f"scheme {offered['scheme']}, seed {offered['seed']}"),
        (f"arrivals: {offered['arrivals']} "
         f"({offered['late_arrivals']} late spawns)"),
        (f"achieved: {achieved['completed']} completed / "
         f"{achieved['retryable']} retryable / "
         f"{achieved['failed']} failed — "
         f"{achieved['throughput_rooms_per_s']:g} rooms/s sustained "
         f"over {achieved['span_s']:g}s"),
    ]
    for name, summary in (doc.get("slo") or {}).items():
        if summary["count"]:
            lines.append(
                f"{name}: p50={summary['p50']:.4g}s "
                f"p90={summary['p90']:.4g}s p99={summary['p99']:.4g}s "
                f"max={summary['max']:.4g}s (n={summary['count']}, "
                f"clamped={summary.get('clamped', 0)})")
    if relay.get("relay_latency"):
        s = relay["relay_latency"]
        lines.append(
            f"svc:relay-latency (merged): p50={s['p50']:.4g}s "
            f"p99={s['p99']:.4g}s max={s['max']:.4g}s (n={s['count']})")
    if relay.get("busy"):
        sheds = ", ".join(f"{k}={v}" for k, v in
                          sorted(relay["busy"].items()))
        lines.append(f"sheds   : {sheds}")
    retries = doc.get("retries") or {}
    if retries:
        lines.append("retries : " + ", ".join(
            f"{k}={v}" for k, v in sorted(retries.items())))
    verdict = "EXACT" if model["counts_exact"] else \
        f"{len(model['mismatches'])} MISMATCHES"
    lines.append(
        f"model   : [{model['backend']}] modexp/party = "
        f"{model['expressions_per_party']['modexp']} — counts {verdict} "
        f"over {model['rooms_validated']} completed rooms "
        f"(bytes ±{model['bytes_tolerance']:.0%})")
    if not model["counts_exact"]:
        for line in model["mismatches"][:10]:
            lines.append(f"  !! {line}")
    if "capacity_rooms_per_s" in capacity:
        bounds = []
        if "admission_bound_rooms_per_s" in capacity:
            bounds.append(
                f"admission {capacity['admission_bound_rooms_per_s']:g}")
        if "compute_bound_rooms_per_s" in capacity:
            bounds.append(
                f"compute {capacity['compute_bound_rooms_per_s']:g}")
        lines.append(
            f"capacity: ~{capacity['capacity_rooms_per_s']:g} rooms/s "
            f"({'; '.join(bounds)} bound)")
    lines.extend(_format_timeline(doc.get("timeline")))
    return "\n".join(lines)


#: Rendered timeline rows are capped — the JSON document keeps them all.
_TIMELINE_ROWS = 12


def _format_timeline(timeline: Optional[Mapping[str, object]]) -> List[str]:
    """The report's timeline section: one row per sampling interval."""
    if not timeline or not timeline.get("intervals"):
        return []
    intervals = list(timeline["intervals"])
    lines = [
        "timeline (sampled during the run)",
        "---------------------------------",
        (f"{'t(s)':>7}  {'rooms/s':>8}  {'sheds/s':>8}  {'retry/s':>8}  "
         f"{'relay p50':>10}  {'relay p99':>10}  {'active':>6}"),
    ]
    step = max(1, -(-len(intervals) // _TIMELINE_ROWS))   # ceil-div stride
    shown = intervals[::step]
    if intervals[-1] not in shown:
        shown.append(intervals[-1])
    for row in shown:
        p50 = (f"{row['relay_p50_s'] * 1e3:.2f}ms"
               if row.get("relay_p50_s") is not None else "-")
        p99 = (f"{row['relay_p99_s'] * 1e3:.2f}ms"
               if row.get("relay_p99_s") is not None else "-")
        lines.append(
            f"{row['t']:7.1f}  {row['rooms_per_s']:8.2f}  "
            f"{row['shed_per_s_total']:8.2f}  {row['retries_per_s']:8.2f}  "
            f"{p50:>10}  {p99:>10}  {row['active_rooms']:6d}")
    if len(shown) < len(intervals):
        lines.append(f"({len(intervals)} intervals sampled, "
                     f"showing every {step}th)")
    peak = timeline.get("peak_rooms_per_s")
    worst = timeline.get("worst_relay_p99_s")
    lines.append(
        f"peak    : {peak:g} rooms/s; worst relay p99 "
        + (f"{worst * 1e3:.2f}ms" if worst is not None else "n/a"))
    return lines


__all__ = ["build_report", "format_report", "BUSY_COUNTERS"]
