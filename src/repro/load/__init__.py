"""Open-loop load harness + symbolic capacity model (`repro.load`).

Every other bench in this repository drives the system *closed-loop*: a
fixed set of rooms, each waiting for the last.  Production means
*open-loop* sustained arrival traffic — rooms arrive on their own clock
whether or not the cluster has finished the previous ones.  This package
supplies both halves of the capacity-planning story:

* :mod:`repro.load.arrivals` — seeded, deterministic arrival processes
  (Poisson and bursty on-off MMPP) plus the room-size mix;
* :mod:`repro.load.generator` — the open-loop driver: spawns handshake
  rooms against a running relay (single server or `repro.cluster`) at a
  target arrival rate without waiting for completions, collecting
  per-room timestamps, outcomes and metric books;
* :mod:`repro.load.report` — the SLO report: admission / end-to-end
  latency histograms, BUSY-shed and retry rates, throughput, plus the
  relay-side percentiles pulled from the aggregated STATUS query;
* :mod:`repro.load.model` — the symbolic capacity model: closed-form
  modexp / message / wire-byte counts as functions of ``(m, rooms,
  shards, scheme)``, validated *exactly* against the measured books of
  every completed room, and inverted into a capacity estimate ("K shards
  saturate at X rooms/sec").

CLI: ``python -m repro load --rate 2 --duration 10 --mix 2:0.7,3:0.3
--shards 2``.  Benchmark: ``benchmarks/bench_load.py`` (artifact
``BENCH_load.json``).  Docs: ``docs/PERFORMANCE.md`` (capacity model),
``docs/OBSERVABILITY.md`` (the ``load:*`` counter family).
"""

from repro.load.arrivals import (
    ArrivalProcess,
    OnOffProcess,
    PoissonProcess,
    RoomMix,
    make_process,
)
from repro.load.generator import (
    LoadConfig,
    RoomResult,
    run_open_loop,
    run_timed_room,
)
from repro.load.model import HandshakeModel, capacity_report
from repro.load.report import build_report, format_report

__all__ = [
    "ArrivalProcess",
    "PoissonProcess",
    "OnOffProcess",
    "RoomMix",
    "make_process",
    "LoadConfig",
    "RoomResult",
    "run_open_loop",
    "run_timed_room",
    "HandshakeModel",
    "capacity_report",
    "build_report",
    "format_report",
]
