"""Arrival processes and the room-size mix for the open-loop driver.

An arrival process turns a target mean rate into a concrete, *seeded*
schedule of absolute arrival offsets — the same seed always yields the
same schedule, so a load run is reproducible and two legs of a benchmark
can offer byte-identical traffic.  Two shapes are provided:

* :class:`PoissonProcess` — memoryless arrivals (exponential gaps), the
  classic open-loop reference load;
* :class:`OnOffProcess` — a two-state Markov-modulated Poisson process
  (MMPP): bursts of elevated rate separated by quiet periods, the shape
  flash crowds and mobile wake-ups actually have.  State holding times
  are exponential, so the process stays Markovian and its *mean* rate is
  still the configured one.

Room sizes are drawn per arrival from a :class:`RoomMix` — a weighted
distribution over ``m`` (e.g. ``2:0.7,3:0.2,8:0.1``), parsed from the
CLI string form and sampled with the same seeded RNG discipline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple


class ArrivalProcess:
    """Base: a seeded generator of absolute arrival offsets (seconds)."""

    #: Short name used by the CLI / report ("poisson", "bursty").
    kind = "abstract"

    def times(self, duration: float) -> Iterator[float]:
        """Yield strictly increasing arrival offsets in ``[0, duration)``.

        Exhausting the iterator and calling again continues the stream —
        callers wanting a fresh schedule construct a fresh process."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        """JSON-able parameters for the report."""
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` per second."""

    kind = "poisson"

    def __init__(self, rate: float, rng: random.Random) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate = float(rate)
        self.rng = rng

    def times(self, duration: float) -> Iterator[float]:
        t = 0.0
        while True:
            t += self.rng.expovariate(self.rate)
            if t >= duration:
                return
            yield t

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind, "rate": self.rate}


class OnOffProcess(ArrivalProcess):
    """Two-state MMPP: Poisson at ``rate_on`` during bursts, ``rate_off``
    between them; exponential state holding times ``mean_on`` /
    ``mean_off`` seconds.

    The long-run mean rate is
    ``(rate_on * mean_on + rate_off * mean_off) / (mean_on + mean_off)``;
    :meth:`from_mean` solves for ``rate_off`` given a target mean and a
    burst factor, clamping at zero (a sufficiently violent burst factor
    means silence between bursts — the clamp raises the realised mean
    slightly above the target, which :meth:`describe` reports honestly).
    """

    kind = "bursty"

    def __init__(self, rate_on: float, rate_off: float, mean_on: float,
                 mean_off: float, rng: random.Random) -> None:
        if rate_on <= 0 or rate_off < 0:
            raise ValueError("rate_on must be positive, rate_off >= 0")
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError("state holding times must be positive")
        self.rate_on = float(rate_on)
        self.rate_off = float(rate_off)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.rng = rng

    @classmethod
    def from_mean(cls, rate: float, rng: random.Random, *,
                  burst_factor: float = 4.0, on_fraction: float = 0.3,
                  cycle: float = 2.0) -> "OnOffProcess":
        """Build an on-off process with long-run mean ``rate``.

        ``burst_factor`` scales the ON-state rate relative to the mean;
        ``on_fraction`` is the fraction of time spent bursting; ``cycle``
        the mean ON+OFF period length in seconds."""
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0 < on_fraction < 1:
            raise ValueError("on_fraction must be in (0, 1)")
        if burst_factor < 1:
            raise ValueError("burst_factor must be >= 1")
        rate_on = rate * burst_factor
        # Solve mean = on_fraction*rate_on + (1-on_fraction)*rate_off.
        rate_off = max(
            0.0, (rate - on_fraction * rate_on) / (1.0 - on_fraction))
        return cls(rate_on, rate_off, cycle * on_fraction,
                   cycle * (1.0 - on_fraction), rng)

    @property
    def mean_rate(self) -> float:
        span = self.mean_on + self.mean_off
        return (self.rate_on * self.mean_on
                + self.rate_off * self.mean_off) / span

    def times(self, duration: float) -> Iterator[float]:
        t = 0.0
        on = True          # start bursting: short runs still see a burst
        state_ends = self.rng.expovariate(1.0 / self.mean_on)
        while t < duration:
            rate = self.rate_on if on else self.rate_off
            # Candidate next arrival under the current state's rate; a
            # zero-rate (silent) state never produces one.
            candidate = (t + self.rng.expovariate(rate) if rate > 0.0
                         else float("inf"))
            if candidate < state_ends:
                t = candidate
                if t < duration:
                    yield t
                continue
            # The candidate fell beyond this state: discard it, jump to
            # the boundary and redraw under the next state's rate.  Exact
            # because the exponential is memoryless — conditioned on "no
            # arrival before the boundary", the residual wait restarts.
            t = state_ends
            on = not on
            mean = self.mean_on if on else self.mean_off
            state_ends = t + self.rng.expovariate(1.0 / mean)

    def describe(self) -> Dict[str, object]:
        return {"kind": self.kind, "rate_on": self.rate_on,
                "rate_off": self.rate_off, "mean_on_s": self.mean_on,
                "mean_off_s": self.mean_off,
                "mean_rate": round(self.mean_rate, 6)}


def make_process(kind: str, rate: float, rng: random.Random, *,
                 burst_factor: float = 4.0, on_fraction: float = 0.3,
                 cycle: float = 2.0) -> ArrivalProcess:
    """Factory the CLI and benchmarks share (``poisson`` | ``bursty``)."""
    if kind == "poisson":
        return PoissonProcess(rate, rng)
    if kind == "bursty":
        return OnOffProcess.from_mean(rate, rng, burst_factor=burst_factor,
                                      on_fraction=on_fraction, cycle=cycle)
    raise ValueError(f"unknown arrival process {kind!r} "
                     f"(expected 'poisson' or 'bursty')")


@dataclass(frozen=True)
class RoomMix:
    """Weighted distribution over room sizes ``m``.

    ``entries`` is a sorted tuple of ``(m, weight)`` with positive
    weights; weights need not sum to 1 (they are normalised on sampling).
    """

    entries: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError("a room mix needs at least one entry")
        for m, weight in self.entries:
            if m < 2:
                raise ValueError(f"room size {m} < 2 cannot handshake")
            if weight <= 0:
                raise ValueError(f"weight for m={m} must be positive")

    @classmethod
    def parse(cls, text: str) -> "RoomMix":
        """Parse the CLI form ``"2:0.7,3:0.2,8:0.1"`` (or just ``"4"``
        for a single-size mix)."""
        entries: Dict[int, float] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" in part:
                m_text, _, w_text = part.partition(":")
            else:
                m_text, w_text = part, "1"
            try:
                m, weight = int(m_text), float(w_text)
            except ValueError as exc:
                raise ValueError(f"bad mix entry {part!r}: {exc}") from None
            entries[m] = entries.get(m, 0.0) + weight
        return cls(tuple(sorted(entries.items())))

    @classmethod
    def single(cls, m: int) -> "RoomMix":
        return cls(((m, 1.0),))

    @property
    def sizes(self) -> List[int]:
        return [m for m, _ in self.entries]

    @property
    def max_m(self) -> int:
        return max(self.sizes)

    def mean_m(self) -> float:
        total = sum(w for _, w in self.entries)
        return sum(m * w for m, w in self.entries) / total

    def sample(self, rng: random.Random) -> int:
        """Draw one room size (seeded by the caller's RNG)."""
        total = sum(w for _, w in self.entries)
        point = rng.random() * total
        acc = 0.0
        for m, weight in self.entries:
            acc += weight
            if point <= acc:
                return m
        return self.entries[-1][0]

    def describe(self) -> Dict[str, float]:
        total = sum(w for _, w in self.entries)
        return {str(m): round(w / total, 6) for m, w in self.entries}

    def __str__(self) -> str:
        return ",".join(f"{m}:{w:g}" for m, w in self.entries)


__all__ = ["ArrivalProcess", "PoissonProcess", "OnOffProcess", "RoomMix",
           "make_process"]
