"""Open-loop load driver: arrival-clocked rooms against a live relay.

Closed-loop benches admit the next room only when the previous one
finishes, so the system never sees pressure.  This driver spawns rooms on
the *arrival process's* clock — if the relay (or this box's CPU) cannot
keep up, rooms pile up, admission control sheds, and the SLO report says
so.  That is the point: the open-loop numbers are the ones a capacity
claim can stand on.

Every room runs under its own :class:`repro.metrics.Recorder`, so its
per-party ``hs:<i>`` books are isolated and can be validated against the
symbolic model (:mod:`repro.load.model`) room by room.  The driver's own
recorder collects the run-level telemetry: the ``load:*`` counters and
the ``load:admission-latency`` / ``load:e2e-latency`` histograms
(docs/OBSERVABILITY.md).

Honesty guards, because an overloaded *generator* fakes good latencies:

* a room whose spawn lags its scheduled arrival by more than
  ``late_grace`` books ``load:late-arrivals`` — when that counter is a
  large fraction of arrivals the offered rate exceeded what this process
  could generate and the achieved rate (always reported) is the truth;
* admission/e2e latencies are measured from the *scheduled* arrival
  instant, not the (possibly late) spawn, so generator lag counts
  against the SLO rather than hiding inside it.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import metrics
from repro.core.handshake import HandshakePolicy
from repro.load.arrivals import ArrivalProcess, RoomMix, make_process
from repro.load.model import HandshakeModel
from repro.obs import logging as obslog
from repro.obs import spans as obs
from repro.service import framing
from repro.service.client import ClientConfig, join_room

_log = obslog.get_logger("repro.load.generator")


@dataclass
class LoadConfig:
    """One open-loop run."""

    host: str = "127.0.0.1"
    port: int = 0
    rate: float = 2.0               # mean arrivals (rooms) per second
    duration: float = 10.0          # arrival-generation window, seconds
    process: str = "poisson"        # "poisson" | "bursty"
    burst_factor: float = 4.0       # bursty: ON rate / mean rate
    on_fraction: float = 0.3        # bursty: fraction of time bursting
    cycle: float = 2.0              # bursty: mean ON+OFF period, seconds
    mix: RoomMix = field(default_factory=lambda: RoomMix.single(2))
    scheme: str = "1"
    seed: int = 2005
    deadline: float = 30.0          # per-party client deadline
    drain_grace: float = 10.0       # post-generation wait for stragglers
    late_grace: float = 0.05        # spawn lag that books load:late-arrivals
    max_frame: int = framing.DEFAULT_MAX_FRAME
    #: Validate each completed room's books against the symbolic model
    #: (set False only to bypass a *known* model gap while debugging).
    validate: bool = True


@dataclass
class RoomResult:
    """One room's outcome, timestamps relative to the run epoch."""

    room: str
    m: int
    arrival_s: float                  # scheduled arrival offset
    spawned_s: float                  # when the driver actually launched it
    admitted_s: Optional[float]       # all m members WELCOMEd (room filled)
    first_welcome_s: Optional[float]  # first member's index assignment
    completed_s: Optional[float]      # gather returned with all successes
    outcome: str                      # "completed" | "retryable" | "failed"
    successes: int
    retryable_failures: int
    nonretryable_failures: int
    books: Dict[str, Dict[str, object]]   # per-scope counter dicts
    counters: Dict[str, int]              # room-level svc-client:* totals
    mismatches: List[str] = field(default_factory=list)
    #: Trace context all this room's members sent in HELLO (tracing runs
    #: only) — the id that stitches client, router and shard spans into
    #: one trace in the merged Chrome trace.
    trace_id: Optional[str] = None
    #: This room's client-side finished spans (dict form) + their
    #: recorder epoch; stay off ``as_dict()`` — they are trace material,
    #: not SLO schema.
    spans: List[dict] = field(default_factory=list)
    span_epoch: Optional[float] = None

    @property
    def admission_latency_s(self) -> Optional[float]:
        if self.admitted_s is None:
            return None
        return self.admitted_s - self.arrival_s

    @property
    def e2e_latency_s(self) -> Optional[float]:
        if self.completed_s is None:
            return None
        return self.completed_s - self.arrival_s

    def as_dict(self) -> Dict[str, object]:
        """JSON-able schema shared with the closed-loop cluster bench."""
        rnd = lambda v: None if v is None else round(v, 6)  # noqa: E731
        return {
            "room": self.room,
            "m": self.m,
            "arrival_s": rnd(self.arrival_s),
            "spawned_s": rnd(self.spawned_s),
            "first_welcome_s": rnd(self.first_welcome_s),
            "admitted_s": rnd(self.admitted_s),
            "completed_s": rnd(self.completed_s),
            "admission_latency_s": rnd(self.admission_latency_s),
            "e2e_latency_s": rnd(self.e2e_latency_s),
            "outcome": self.outcome,
            "successes": self.successes,
            "retryable_failures": self.retryable_failures,
            "nonretryable_failures": self.nonretryable_failures,
            "mismatches": list(self.mismatches),
            "trace_id": self.trace_id,
        }


def _books_snapshot(recorder: metrics.Recorder) -> Dict[str, Dict[str, object]]:
    return {name: counters.as_dict()
            for name, counters in recorder.snapshot().items()}


async def run_timed_room(members: Sequence[object], config: ClientConfig,
                         policy: Optional[HandshakePolicy] = None,
                         rngs: Optional[Sequence[random.Random]] = None,
                         *, epoch: Optional[float] = None,
                         arrival_s: Optional[float] = None,
                         model: Optional[HandshakeModel] = None,
                         ) -> RoomResult:
    """Drive one full room and stamp its lifecycle timestamps.

    Like :func:`repro.service.client.run_room` (members join in roster
    order, outcomes aligned with ``members``) but additionally records,
    relative to ``epoch`` (default: now): first WELCOME, room filled, and
    completion instants — the schema both the open-loop driver and the
    closed-loop cluster bench emit, so their runs are directly
    comparable.  Runs under a fresh recorder; the room's full books ride
    along in the result (and are validated against ``model`` when given).
    """
    epoch = time.perf_counter() if epoch is None else epoch
    spawned_s = time.perf_counter() - epoch
    arrival_s = spawned_s if arrival_s is None else arrival_s
    if rngs is None:
        rngs = [random.Random(7000 + i) for i in range(len(members))]
    m = len(members)
    cfg = ClientConfig(**{**config.__dict__, "m": m})
    recorder = metrics.Recorder()
    # Tracing is inherited from the caller (the load driver / bench): one
    # trace id per *room*, minted here — not per member — so all m
    # members send the same context and the server-side room joins it.
    recorder.tracing = metrics.current_recorder().tracing
    trace_id: Optional[str] = None
    if recorder.tracing:
        trace_id = obs.valid_trace(cfg.trace) or obs.mint_trace_id()
        cfg = ClientConfig(**{**cfg.__dict__, "trace": trace_id})
    welcome_times: List[float] = []

    async def _one(index: int) -> object:
        joined = asyncio.Event()
        task = asyncio.ensure_future(
            join_room(members[index], cfg, policy, rngs[index],
                      joined=joined))
        waiter = asyncio.ensure_future(joined.wait())
        await asyncio.wait([waiter, task],
                           return_when=asyncio.FIRST_COMPLETED)
        waiter.cancel()
        if joined.is_set():
            welcome_times.append(time.perf_counter() - epoch)
        return task

    with metrics.using(recorder):
        tasks = [await _one(i) for i in range(m)]
        outcomes = list(await asyncio.gather(*tasks))
    completed_s = time.perf_counter() - epoch

    successes = sum(o.success for o in outcomes)
    retryable = sum((not o.success) and o.retryable for o in outcomes)
    casualties = sum((not o.success) and (not o.retryable)
                     for o in outcomes)
    if successes == m:
        outcome = "completed"
    elif casualties == 0:
        outcome = "retryable"
    else:
        outcome = "failed"
    books = _books_snapshot(recorder)
    counters = {name: value
                for name, value in recorder.total().extra.items()
                if name.startswith("svc-client:")}
    mismatches: List[str] = []
    if model is not None and outcome == "completed":
        mismatches = model.validate_room(m, books, label=cfg.room)
    return RoomResult(
        room=cfg.room, m=m,
        arrival_s=arrival_s, spawned_s=spawned_s,
        first_welcome_s=min(welcome_times) if welcome_times else None,
        admitted_s=(max(welcome_times)
                    if len(welcome_times) == m else None),
        completed_s=completed_s if outcome == "completed" else None,
        outcome=outcome, successes=successes,
        retryable_failures=retryable, nonretryable_failures=casualties,
        books=books, counters=counters, mismatches=mismatches,
        trace_id=trace_id,
        spans=[span.as_dict() for span in recorder.drain_spans()],
        span_epoch=recorder.epoch if recorder.tracing else None)


async def run_open_loop(config: LoadConfig, members: Sequence[object],
                        policy: Optional[HandshakePolicy] = None,
                        *, process: Optional[ArrivalProcess] = None,
                        ) -> List[RoomResult]:
    """The open-loop driver: spawn rooms on the arrival clock, never
    waiting for completions; return every room's :class:`RoomResult`.

    ``members`` must hold at least ``config.mix.max_m`` same-group
    members; each room uses the first ``m`` of them (concurrent reuse of
    member credentials across rooms is safe — handshake state lives in
    the per-room devices).  Run-level ``load:*`` telemetry lands in the
    *caller's* recorder.
    """
    mix = config.mix
    if len(members) < mix.max_m:
        raise ValueError(
            f"need {mix.max_m} members for the largest room in the mix, "
            f"got {len(members)}")
    rng = random.Random(config.seed)
    if process is None:
        process = make_process(config.process, config.rate, rng,
                               burst_factor=config.burst_factor,
                               on_fraction=config.on_fraction,
                               cycle=config.cycle)
    model = HandshakeModel(config.scheme) if config.validate else None
    client = ClientConfig(host=config.host, port=config.port,
                          deadline=config.deadline,
                          max_frame=config.max_frame)

    loop = asyncio.get_running_loop()
    epoch = time.perf_counter()
    loop_epoch = loop.time()
    tasks: List[asyncio.Task] = []
    arrivals = 0
    for arrival_s in process.times(config.duration):
        lag = (loop.time() - loop_epoch) - arrival_s
        if lag < 0:
            await asyncio.sleep(-lag)
        elif lag > config.late_grace:
            # The driver itself fell behind the offered schedule: the
            # achieved rate, not config.rate, is what this run offered.
            metrics.bump("load:late-arrivals")
        m = mix.sample(rng)
        room = f"load-{config.seed}-{arrivals:06d}"
        room_cfg = ClientConfig(**{**client.__dict__, "room": room})
        room_rngs = [random.Random(rng.getrandbits(48)) for _ in range(m)]
        metrics.bump("load:arrivals")
        metrics.bump(f"load:arrivals:m={m}")
        tasks.append(asyncio.ensure_future(run_timed_room(
            members[:m], room_cfg, policy, room_rngs, epoch=epoch,
            arrival_s=arrival_s, model=model)))
        arrivals += 1
    obslog.log_event(_log, "arrivals-done", arrivals=arrivals,
                     duration_s=config.duration)

    # Open-loop ends here; what remains is bounded draining.  Every room
    # task self-terminates (the client deadline is the backstop), so the
    # grace window only covers rooms still legitimately in flight.
    grace = config.deadline + config.drain_grace
    done, pending = await asyncio.wait(tasks, timeout=grace) \
        if tasks else (set(), set())
    for task in pending:                  # deadline machinery failed us
        metrics.bump("load:drain-timeouts")
        task.cancel()
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)

    results: List[RoomResult] = []
    for task in tasks:
        if task.cancelled():
            continue
        exc = task.exception()
        if exc is not None:
            raise exc
        result = task.result()
        results.append(result)
        metrics.bump(f"load:{result.outcome}")
        if result.admission_latency_s is not None:
            metrics.observe("load:admission-latency",
                            result.admission_latency_s)
        if result.e2e_latency_s is not None:
            metrics.observe("load:e2e-latency", result.e2e_latency_s)
        if result.mismatches:
            metrics.bump("load:model-mismatches", len(result.mismatches))
        for name, value in result.counters.items():
            # Room-level client retry/shed telemetry, folded up so the
            # report can state run-wide retry rates.
            metrics.bump(name, value)
    return results


__all__ = ["LoadConfig", "RoomResult", "run_timed_room", "run_open_loop"]
