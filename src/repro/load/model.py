"""Symbolic capacity model: closed-form handshake costs in ``m``.

The paper states per-participant costs as closed forms in the room size
``m`` (Sections 8.1 / 8.2: "O(m) modular exponentiations, O(m)
messages").  The E1/E2 benches *measure* those counts; this module writes
them down as symbolic expressions, predicts the books of any load run
from ``(m, rooms, shards, scheme)``, and validates the prediction against
the measured per-room recorder books — **exactly** for operation and
message counts, within a documented tolerance for wire bytes.

Closed forms (per party, per completed handshake)
-------------------------------------------------

* Phase I, Burmester–Desmedt DGKA: ``m + 2`` modexp — one for the
  ephemeral ``z_i = g^{r_i}``, one for the ratio ``X_i``, and ``m`` in
  the cyclic key fold.
* Phase III, SPK sign + verify: one signature (``SIGN`` modexp, constant
  in ``m``) plus one verification per peer (``VERIFY`` modexp each).
  Scheme 1 (ACJT group signature): ``SIGN + VERIFY·(m-1) = 31 + 23(m-1)``.
  Scheme 2 (KTY): ``25 + 18(m-1)``.
* Messages: 4 broadcasts sent, ``4(m-1)`` received per party — one per
  protocol round, independent of scheme (the E2 claim).

So per-party modexp is ``24m + 10`` (scheme 1) and ``19m + 9`` (scheme 2);
a completed room of size ``m`` books ``m`` times that, and a load run of
``rooms(m)`` completed rooms per size books the mix-weighted sum.  The
``shards`` symbol does not change the books at all — the cluster router
is a byte splice (the PR-5 parity theorem) — which is itself a prediction
this model validates: cost is a function of ``(m, rooms, scheme)`` only.

Wire bytes are affine too, but their constants are *calibration*
constants, not derivations: frame sizes vary by a few bytes with bigint
leading zeros and varint lengths, so byte predictions carry a ±5%
tolerance (``BYTES_TOLERANCE``) instead of exactness.  Operation and
message counts carry **zero** tolerance: one modexp of drift fails the
run, because a drifting count means the instrumentation or the protocol
changed — the same contract as CI's E1 drift guard.

Backends: expressions are built with :mod:`sympy` when it is importable
(pretty symbolic output, ``subs``-based evaluation) and fall back to a
small pure-Python polynomial type with the same surface otherwise — the
model never requires an install.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

try:                                    # optional extra, never required
    import sympy as _sympy
except Exception:                       # pragma: no cover - env dependent
    _sympy = None

#: Relative tolerance for wire-byte predictions (see module docstring).
BYTES_TOLERANCE = 0.05

#: Per-party modexp constants, derived in the module docstring.
DGKA_SLOPE, DGKA_CONST = 1, 2           # Burmester-Desmedt: m + 2
SIGN_MODEXP = {"1": 31, "2": 25}        # SPK sign + key-confirm, constant
VERIFY_MODEXP = {"1": 23, "2": 18}      # SPK verify, per peer

#: Messages per party (round structure, scheme-independent).
SENT_PER_PARTY = 4

#: Wire-byte calibration constants (bytes per broadcast frame as sent by
#: one party over the rendezvous transport, amortised over the 4 rounds;
#: DELIVER re-wrapping adds a small constant per relayed copy).
BYTES_SENT_PER_PARTY = {"1": 3030, "2": 2090}
DELIVER_OVERHEAD = 8


class _Poly:
    """Minimal univariate integer polynomial in ``m`` — the pure-Python
    stand-in for a sympy expression (supports +, *, int evaluation and a
    sympy-style string form)."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Mapping[int, int]) -> None:
        self.coeffs = {p: int(c) for p, c in coeffs.items() if c}

    @classmethod
    def const(cls, value: int) -> "_Poly":
        return cls({0: value})

    @classmethod
    def m(cls) -> "_Poly":
        return cls({1: 1})

    def _as_poly(self, other) -> "_Poly":
        return other if isinstance(other, _Poly) else _Poly.const(other)

    def __add__(self, other) -> "_Poly":
        other = self._as_poly(other)
        merged = dict(self.coeffs)
        for p, c in other.coeffs.items():
            merged[p] = merged.get(p, 0) + c
        return _Poly(merged)

    __radd__ = __add__

    def __sub__(self, other) -> "_Poly":
        other = self._as_poly(other)
        return self + _Poly({p: -c for p, c in other.coeffs.items()})

    def __mul__(self, other) -> "_Poly":
        other = self._as_poly(other)
        product: Dict[int, int] = {}
        for p1, c1 in self.coeffs.items():
            for p2, c2 in other.coeffs.items():
                product[p1 + p2] = product.get(p1 + p2, 0) + c1 * c2
        return _Poly(product)

    __rmul__ = __mul__

    def eval(self, m: int) -> int:
        return sum(c * m ** p for p, c in self.coeffs.items())

    def __str__(self) -> str:
        if not self.coeffs:
            return "0"
        parts: List[str] = []
        for p in sorted(self.coeffs, reverse=True):
            c = self.coeffs[p]
            if p == 0:
                term = str(abs(c))
            elif p == 1:
                term = f"{abs(c)}*m" if abs(c) != 1 else "m"
            else:
                term = f"{abs(c)}*m**{p}" if abs(c) != 1 else f"m**{p}"
            parts.append(("- " if c < 0 else "+ ") + term)
        text = " ".join(parts)
        return text[2:] if text.startswith("+ ") else "-" + text[2:]


def _symbol_m():
    if _sympy is not None:
        return _sympy.Symbol("m", positive=True, integer=True)
    return _Poly.m()


def _evaluate(expr, m: int) -> int:
    if _sympy is not None and isinstance(expr, _sympy.Basic):
        return int(expr.subs({_sympy.Symbol("m", positive=True,
                                            integer=True): m}))
    if isinstance(expr, _Poly):
        return expr.eval(m)
    return int(expr)


def backend() -> str:
    """Which expression backend is active ("sympy" | "python")."""
    return "sympy" if _sympy is not None else "python"


class HandshakeModel:
    """Closed-form cost model for one scheme's handshake.

    Expressions are per *party*; :meth:`per_room` multiplies by ``m``,
    :meth:`predict` folds a whole run's room mix.  All counts refer to
    the client-side ``hs:<i>`` books over the rendezvous transport (the
    engine/simulator/socket parity theorem makes them transport-
    independent for operations and messages; bytes are socket-specific).
    """

    def __init__(self, scheme: str = "1") -> None:
        scheme = str(scheme)
        if scheme not in SIGN_MODEXP:
            raise ValueError(f"unknown scheme {scheme!r} (expected '1'/'2')")
        self.scheme = scheme
        m = _symbol_m()
        self._m = m
        #: Per-party symbolic expressions.
        self.dgka_modexp = m + DGKA_CONST              # phase I
        self.phase3_modexp = (SIGN_MODEXP[scheme]
                              + VERIFY_MODEXP[scheme] * (m - 1))
        self.modexp = self.dgka_modexp + self.phase3_modexp
        self.messages_sent = _const_expr(SENT_PER_PARTY)
        self.messages_received = SENT_PER_PARTY * (m - 1)
        self.bytes_sent = _const_expr(BYTES_SENT_PER_PARTY[scheme])
        self.bytes_received = ((BYTES_SENT_PER_PARTY[scheme]
                                + DELIVER_OVERHEAD) * (m - 1))

    # Closed forms ---------------------------------------------------------

    def expressions(self) -> Dict[str, str]:
        """The per-party closed forms as printable strings."""
        return {
            "modexp": str(self.modexp),
            "messages_sent": str(self.messages_sent),
            "messages_received": str(self.messages_received),
            "bytes_sent~": str(self.bytes_sent),
            "bytes_received~": str(self.bytes_received),
        }

    def per_party(self, m: int) -> Dict[str, int]:
        """Predicted books for one party in a completed room of size m."""
        if m < 2:
            raise ValueError("a handshake needs m >= 2")
        return {
            "modexp": _evaluate(self.modexp, m),
            "messages_sent": _evaluate(self.messages_sent, m),
            "messages_received": _evaluate(self.messages_received, m),
            "bytes_sent": _evaluate(self.bytes_sent, m),
            "bytes_received": _evaluate(self.bytes_received, m),
        }

    def per_room(self, m: int) -> Dict[str, int]:
        """Summed over the room's m parties."""
        return {name: m * value for name, value in self.per_party(m).items()}

    def predict(self, rooms_by_m: Mapping[int, int],
                shards: int = 1) -> Dict[str, int]:
        """Aggregate prediction for a run: ``rooms_by_m`` maps room size
        to the number of *completed* rooms of that size.  ``shards`` is
        accepted to make the claim explicit: it multiplies nothing —
        the router is a byte splice, the books are shard-invariant."""
        del shards                       # shard-invariance IS the model
        totals = {"modexp": 0, "messages_sent": 0, "messages_received": 0,
                  "bytes_sent": 0, "bytes_received": 0}
        for m, rooms in rooms_by_m.items():
            per_room = self.per_room(m)
            for name in totals:
                totals[name] += rooms * per_room[name]
        return totals

    # Validation -----------------------------------------------------------

    def validate_party(self, m: int, books: Mapping[str, int],
                       label: str = "party") -> List[str]:
        """Check one party's measured books against the closed forms.

        Returns human-readable mismatch strings (empty = clean).  Exact
        equality for modexp and message counts; bytes within
        ±``BYTES_TOLERANCE``."""
        predicted = self.per_party(m)
        mismatches: List[str] = []
        for name in ("modexp", "messages_sent", "messages_received"):
            measured = int(books.get(name, 0))
            if measured != predicted[name]:
                mismatches.append(
                    f"{label}: {name} measured {measured} != "
                    f"predicted {predicted[name]} (m={m}, "
                    f"scheme {self.scheme})")
        for name in ("bytes_sent", "bytes_received"):
            measured = int(books.get(name, 0))
            want = predicted[name]
            if abs(measured - want) > BYTES_TOLERANCE * want:
                mismatches.append(
                    f"{label}: {name} measured {measured} outside "
                    f"{want}±{BYTES_TOLERANCE:.0%} (m={m}, "
                    f"scheme {self.scheme})")
        return mismatches

    def validate_room(self, m: int,
                      books: Mapping[str, Mapping[str, int]],
                      label: str = "room") -> List[str]:
        """Validate a completed room's per-party ``hs:<i>`` books."""
        mismatches: List[str] = []
        for i in range(m):
            party = books.get(f"hs:{i}")
            if party is None:
                mismatches.append(f"{label}: no books for hs:{i}")
                continue
            mismatches.extend(
                self.validate_party(m, party, f"{label}/hs:{i}"))
        return mismatches


def _const_expr(value: int):
    if _sympy is not None:
        return _sympy.Integer(value)
    return _Poly.const(value)


def capacity_report(*, scheme: str, mean_m: float, shards: int,
                    max_rooms_per_shard: Optional[int],
                    mean_room_lifetime_s: Optional[float],
                    measured_modexp: int, measured_busy_s: float,
                    cores: int = 1) -> Dict[str, object]:
    """Invert the cost model into a capacity estimate.

    Two independent ceilings bound the sustainable *completed-rooms/sec*
    arrival rate; the report returns both and their minimum:

    * **admission bound** — a shard holds at most ``max_rooms_per_shard``
      open rooms, each occupying its slot for the mean room lifetime
      ``E[S]``; by Little's law the fleet saturates at
      ``shards · max_rooms / E[S]`` rooms/sec (the Erlang-loss corner:
      offered load beyond it is shed as BUSY, which the open-loop bench
      demonstrates).  Unlimited admission -> no bound from this term.
    * **compute bound** — a completed room of mean size ``m̄`` costs
      ``m̄ · modexp_per_party(m̄)`` modexp; with the run's measured
      seconds-per-modexp calibration ``measured_busy_s /
      measured_modexp``, ``cores`` CPUs sustain at most
      ``cores / (room_modexp · s_per_modexp)`` rooms/sec.

    All inputs are measured quantities from the run plus the symbolic
    count — no wall-clock prophecy, just arithmetic on the books.
    """
    model = HandshakeModel(scheme)
    m_round = max(2, round(mean_m))
    room_modexp = model.per_room(m_round)["modexp"]
    out: Dict[str, object] = {
        "scheme": scheme,
        "mean_m": round(mean_m, 3),
        "room_modexp_at_mean_m": room_modexp,
        "modexp_per_party_expr": str(model.modexp),
        "backend": backend(),
    }
    admission = None
    if max_rooms_per_shard is not None and mean_room_lifetime_s:
        admission = shards * max_rooms_per_shard / mean_room_lifetime_s
        out["admission_bound_rooms_per_s"] = round(admission, 3)
    compute = None
    if measured_modexp > 0 and measured_busy_s > 0:
        s_per_modexp = measured_busy_s / measured_modexp
        compute = cores / (room_modexp * s_per_modexp)
        out["s_per_modexp"] = round(s_per_modexp, 9)
        out["compute_bound_rooms_per_s"] = round(compute, 3)
    bounds = [b for b in (admission, compute) if b is not None]
    if bounds:
        out["capacity_rooms_per_s"] = round(min(bounds), 3)
    return out


__all__ = ["HandshakeModel", "capacity_report", "backend",
           "BYTES_TOLERANCE", "SIGN_MODEXP", "VERIFY_MODEXP",
           "BYTES_SENT_PER_PARTY", "DELIVER_OVERHEAD", "SENT_PER_PARTY"]
