"""Service layer: the GCD handshake over real asyncio TCP sockets.

The simulator (:mod:`repro.net.simulator`) executes the protocol in-process;
this package runs the *same* :class:`repro.net.runner.HandshakeDevice` state
machines over genuine network streams, through an untrusted rendezvous
relay — exactly the paper's anonymous-broadcast-channel assumption realised
as infrastructure:

* :mod:`repro.service.framing`  — length-prefixed frame codec (max-frame and
  truncation protection) carrying :mod:`repro.core.wire` payloads;
* :mod:`repro.service.protocol` — typed client<->server control messages;
* :mod:`repro.service.server`   — the rendezvous server: many concurrent
  handshake rooms, per-room FIFO broadcast relay, timeouts, backpressure,
  graceful drain;
* :mod:`repro.service.client`   — async participant driver with connect
  retry/backoff, an overall deadline, and :func:`query_status` for the
  one-shot STATUS introspection query (docs/OBSERVABILITY.md);
* :mod:`repro.service.faults`   — opt-in fault injection (delay, drop,
  duplicate, disconnect-at-phase) for graceful-degradation tests.

The server is an *untrusted relay*: it sees only wire-format ciphertext
payloads and learns nothing a passive eavesdropper would not (tested —
room tokens are random, deliveries carry no sender identity beyond what
the protocol messages themselves embed).
"""

from repro.service.client import (  # noqa: F401
    Backoff,
    ClientConfig,
    join_room,
    query_status,
    run_room,
)
from repro.service.faults import FaultInjector  # noqa: F401
from repro.service.framing import (  # noqa: F401
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.service.server import RendezvousServer, ServerConfig  # noqa: F401
