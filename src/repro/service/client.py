"""Async participant driver: one GCD party over the rendezvous service.

:func:`join_room` connects a member to the server, joins a named room, and
drives a :class:`repro.net.runner.HandshakeDevice` — the exact state
machine the in-process simulator runs — by translating between device
broadcasts and BROADCAST/DELIVER frames.  Because the device code and the
payload encoding are shared, per-party operation counts (modexp, messages
sent/received in scope ``hs:<i>``) are identical across the synchronous
engine, the simulator, and this transport — asserted by the
engine-equivalence tests.

Failure handling: connect retries with exponential backoff + jitter —
capped at ``backoff_max`` and clamped to the remaining overall
``deadline`` so a retry can never sleep past it (:class:`Backoff`) — and
explicit failed :class:`~repro.core.handshake.HandshakeOutcome` results on
room abort, connection loss, or timeout — a client never hangs and never
raises out of :func:`join_room` for protocol-level failures.  Transient
conditions — a typed BUSY shed (admission control / drain), a
``server-shutdown`` abort, or the transport vanishing before the room
activated — are *retried in place*: the client backs off and re-sends
HELLO within the deadline, which is what lets a cluster router re-place
the room onto a live shard.  Failed outcomes carry
``retryable=True`` when the failure was environmental (overload, lost
transport, expired deadline) rather than a protocol verdict.

Observability (docs/OBSERVABILITY.md): connect attempts and handshakes
are span-traced (``connect`` / ``handshake`` with ``transport="socket"``),
admission wait (call entry -> ROOM_READY, including connect retries and
backoff sleeps) feeds ``svc-client:admission-wait`` and handshake latency
(admission -> outcome) feeds ``hs:latency`` — both on the loop clock, the
same clock the deadline machinery uses — and lifecycle
events (retries, aborts, outcomes) go through the redacting structured
logger — identified by roster index and random room token only.
:func:`query_status` fetches the live telemetry snapshot a running relay
serves on the STATUS control query.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro import metrics
from repro.accel import bridge as accel_bridge
from repro.core.handshake import HandshakeOutcome, HandshakePolicy
from repro.errors import EncodingError, ProtocolError, TransportError
from repro.net.runner import HandshakeDevice, SessionPlan
from repro.net.simulator import BROADCAST, Message
from repro.obs import logging as obslog
from repro.obs import spans as obs
from repro.service import framing, protocol

_log = obslog.get_logger("repro.service.client")


@dataclass
class ClientConfig:
    """Connection/session tunables for one participant."""

    host: str = "127.0.0.1"
    port: int = 0
    room: str = "handshake"
    m: int = 2
    max_frame: int = framing.DEFAULT_MAX_FRAME
    connect_retries: int = 4
    backoff_base: float = 0.05     # first retry delay, seconds
    backoff_factor: float = 2.0
    backoff_max: float = 2.0       # ceiling for one backoff delay (pre-jitter)
    backoff_jitter: float = 0.5    # uniform extra fraction of the delay
    deadline: float = 30.0         # overall cap: connect -> outcome
    #: Run device crypto steps on the accel bridge instead of the event
    #: loop.  Counts stay identical (the step runs under the same metric
    #: scope with the caller's recorder pinned); only the thread changes.
    offload: bool = False
    #: Trace context to send in HELLO (16 hex chars, repro.obs.spans).
    #: ``None`` = mint one automatically when the caller's recorder is
    #: tracing, else send no context.  The context is computed once per
    #: :func:`join_room` call and reused across in-place rejoin retries,
    #: so a room re-placed after shard death stays one trace.
    trace: Optional[str] = None


class Backoff:
    """Capped exponential backoff with jitter, clamped to a deadline.

    The bare delay progresses ``base, base*factor, ...`` but never exceeds
    ``maximum`` (the historical bug: ``delay *= factor`` grew unbounded).
    Jitter then adds a uniform extra fraction *on top* of the capped delay
    (de-synchronizing retry herds — the ceiling on one sleep is therefore
    ``maximum * (1 + jitter)``), and finally the sleep is clamped to the
    time remaining until ``deadline_at`` so a retry can never sleep past
    the caller's overall deadline.

    Pure bookkeeping over caller-supplied clocks — :meth:`next_delay`
    takes ``now`` explicitly, so the schedule is unit-testable with a fake
    clock and works against ``loop.time()`` or ``time.monotonic()`` alike.
    """

    def __init__(self, base: float, factor: float, maximum: float,
                 jitter: float = 0.0,
                 rng: Optional[random.Random] = None,
                 deadline_at: Optional[float] = None) -> None:
        self.factor = factor
        self.maximum = maximum
        self.jitter = jitter
        self.rng = rng
        self.deadline_at = deadline_at
        self._next = min(base, maximum)

    def next_delay(self, now: float) -> Optional[float]:
        """The next sleep in seconds, or ``None`` when ``deadline_at`` has
        already passed (the caller should stop retrying, not sleep)."""
        delay = self._next
        self._next = min(self._next * self.factor, self.maximum)
        if self.rng is not None and self.jitter:
            delay *= 1.0 + self.jitter * self.rng.random()
        if self.deadline_at is not None:
            remaining = self.deadline_at - now
            if remaining <= 0.0:
                return None
            delay = min(delay, remaining)
        return delay


class _SessionRetry(Exception):
    """Internal signal: this join attempt hit a *transient* condition (BUSY
    shed, draining server, transport vanished before the room activated)
    — back off and re-send HELLO within the deadline."""

    def __init__(self, counter: str, reason: str) -> None:
        super().__init__(reason)
        self.counter = counter      # svc-client:<counter> metric to bump
        self.reason = reason


#: Abort reasons the client answers by rejoining (the room's host is going
#: away; a fresh HELLO reaches a live server / gets re-placed by a router).
_RETRYABLE_ABORTS = frozenset({"server-shutdown"})

#: Abort reasons that yield a terminal outcome for *this* call but are
#: environmental, so the outcome is flagged ``retryable=True`` for the
#: caller: nobody showed up — peers may well arrive on a later attempt.
_RETRYABLE_OUTCOME_ABORTS = frozenset({"fill-timeout"})


class _DeviceLink:
    """Duck-types the :class:`~repro.net.simulator.Network` surface a
    :class:`Party` uses (``send``): outgoing broadcasts are encoded to
    frames and buffered; the client coroutine flushes them to the socket
    after each device step.  Counting happens here, at enqueue, inside the
    device's ``hs:<i>`` scope — mirroring ``Network.send``."""

    def __init__(self, max_frame: int) -> None:
        self.max_frame = max_frame
        self.outbox: List[bytes] = []

    def send(self, sender: str, recipient: str, payload: object,
             channel: str = "p2p") -> None:
        if recipient != BROADCAST:
            raise ProtocolError(
                "the rendezvous transport only relays broadcasts")
        blob = protocol.encode_message(protocol.Broadcast(payload=payload))
        frame = framing.encode_frame(blob, self.max_frame)
        metrics.count_message_sent(len(frame))
        metrics.bump(f"sent:{sender}")
        self.outbox.append(frame)


def _session_backoff(config: ClientConfig, rng: random.Random,
                     deadline_at: Optional[float]) -> Backoff:
    return Backoff(config.backoff_base, config.backoff_factor,
                   config.backoff_max, config.backoff_jitter, rng,
                   deadline_at)


async def _connect(config: ClientConfig, rng: random.Random,
                   deadline_at: Optional[float] = None,
                   trace: Optional[str] = None):
    """Open the TCP connection, retrying with capped backoff + jitter.

    Each sleep is clamped to the time remaining until ``deadline_at`` (an
    ``loop.time()`` instant); once the deadline has passed, retrying stops
    early with :class:`~repro.errors.TransportError` instead of sleeping
    past the caller's overall deadline."""
    loop = asyncio.get_running_loop()
    backoff = _session_backoff(config, rng, deadline_at)
    last_error: Optional[Exception] = None
    attempts = 0
    with obs.span("connect", trace=trace) as span:
        for attempt in range(config.connect_retries + 1):
            attempts = attempt + 1
            try:
                streams = await asyncio.open_connection(
                    config.host, config.port)
                span.end(attempts=attempts)
                return streams
            except OSError as exc:
                last_error = exc
                if attempt == config.connect_retries:
                    break
                delay = backoff.next_delay(loop.time())
                if delay is None:        # deadline exhausted: stop early
                    break
                metrics.bump("svc-client:retries")
                obslog.log_event(_log, "connect-retry", attempt=attempts,
                                 delay_s=round(delay, 4),
                                 error=type(exc).__name__)
                await asyncio.sleep(delay)
        span.end(attempts=attempts, failed=True)
    raise TransportError(
        f"could not connect to {config.host}:{config.port} after "
        f"{attempts} attempts: {last_error}")


async def join_room(member, config: ClientConfig,
                    policy: Optional[HandshakePolicy] = None,
                    rng: Optional[random.Random] = None,
                    joined: Optional[asyncio.Event] = None) -> HandshakeOutcome:
    """Run one participant through a complete rendezvous handshake.

    Always returns a :class:`HandshakeOutcome`; transport failures, room
    aborts and the overall deadline all surface as ``success=False``
    outcomes (``index`` is ``-1`` if the failure precedes index
    assignment).  Only programming errors escape as exceptions.
    ``joined`` (if given) is set once the server has assigned an index —
    :func:`run_room` uses it to make join order deterministic.

    Transient failures (BUSY shed, draining server, transport vanished
    before the room activated) are retried in place with capped backoff
    until the deadline; failed outcomes carry ``retryable=True`` when the
    failure was environmental rather than a protocol verdict.
    """
    rng = rng if rng is not None else random.Random()
    # One trace context for the whole call — including rejoin retries, so
    # a room re-placed across shard death remains a single trace.  Minted
    # from ``secrets`` (never the seeded rng) only when tracing is on.
    trace_ctx = obs.valid_trace(config.trace) or ""
    if not trace_ctx and metrics.current_recorder().tracing:
        trace_ctx = obs.mint_trace_id()
    loop = asyncio.get_running_loop()
    state = {"index": -1, "joined": joined, "retryable": False,
             "trace": trace_ctx, "started_at": loop.time()}
    deadline_at = loop.time() + config.deadline
    try:
        return await asyncio.wait_for(
            _join_with_retries(member, config, policy, rng, state,
                               deadline_at),
            config.deadline)
    except asyncio.TimeoutError:
        metrics.bump("svc-client:deadline-expired")
        state["retryable"] = True
    except (TransportError, ConnectionError, OSError,
            EncodingError, asyncio.IncompleteReadError):
        metrics.bump("svc-client:transport-failures")
        state["retryable"] = True
    return HandshakeOutcome(index=state["index"], success=False,
                            retryable=state["retryable"])


async def _join_with_retries(member, config: ClientConfig,
                             policy: Optional[HandshakePolicy],
                             rng: random.Random, state: dict,
                             deadline_at: float) -> HandshakeOutcome:
    """Run join attempts until one concludes, backing off on transient
    shed/drain/vanish signals.  The overall ``wait_for`` in
    :func:`join_room` still caps the whole loop; the backoff's deadline
    clamp just makes the last sleep end *at* the deadline instead of
    overshooting it."""
    loop = asyncio.get_running_loop()
    backoff = _session_backoff(config, rng, deadline_at)
    while True:
        try:
            return await _join(member, config, policy, rng, state,
                               deadline_at)
        except _SessionRetry as retry:
            metrics.bump(f"svc-client:{retry.counter}")
            obslog.log_event(_log, "session-retry", counter=retry.counter,
                             retry_reason=retry.reason)
            state["index"] = -1        # any prior index died with its room
            delay = backoff.next_delay(loop.time())
            if delay is None:
                state["retryable"] = True
                return HandshakeOutcome(index=-1, success=False,
                                        retryable=True)
            await asyncio.sleep(delay)


async def _join(member, config: ClientConfig,
                policy: Optional[HandshakePolicy],
                rng: random.Random, state: dict,
                deadline_at: Optional[float] = None) -> HandshakeOutcome:
    state["retryable"] = False
    trace_ctx = state.get("trace") or ""
    reader, writer = await _connect(config, rng, deadline_at,
                                    trace=trace_ctx or None)
    msg_ids = itertools.count(1)
    try:
        await _send(writer, protocol.Hello(room=config.room, m=config.m,
                                           trace=trace_ctx),
                    config.max_frame)
        welcome = await _expect(reader, config, protocol.Welcome, state)
        if welcome is None:
            return HandshakeOutcome(index=-1, success=False,
                                    retryable=state["retryable"])
        state["index"] = welcome.index
        if state.get("joined") is not None:
            state["joined"].set()
        ready = await _expect(reader, config, protocol.RoomReady, state)
        if ready is None:
            return HandshakeOutcome(index=welcome.index, success=False,
                                    retryable=state["retryable"])
        loop = asyncio.get_running_loop()
        # Admission wait: call entry -> ROOM_READY, on the *loop* clock —
        # the same clock the deadline/backoff machinery runs on.  This is
        # where connect retries, BUSY backoff sleeps and the wait for
        # peers land, keeping them out of the handshake latency below.
        metrics.observe("svc-client:admission-wait",
                        loop.time() - state["started_at"])

        plan = SessionPlan(
            session_id=ready.token,
            roster=tuple(f"device-{i}" for i in range(welcome.m)))
        link = _DeviceLink(config.max_frame)
        device = HandshakeDevice(f"device-{welcome.index}", member, plan,
                                 policy, rng)
        device.attached(link)
        # Handshake latency starts at admission and is measured on the
        # loop clock too: one consistent clock for the SLO report, and a
        # re-HELLO resets it, so backoff sleeps never inflate hs:latency.
        hs_started = loop.time()
        with obs.span("handshake", trace=trace_ctx or None, m=welcome.m,
                      transport="socket", party=welcome.index,
                      token=ready.token):
            if config.offload:
                await accel_bridge.run(device.start,
                                       scope=device.metrics_scope)
            else:
                with metrics.scope(device.metrics_scope):
                    device.start()
            await _flush(writer, link)

            while device.outcome is None:
                blob = await framing.read_frame(reader, config.max_frame)
                if blob is None:
                    # Server closed mid-handshake: the room died under us.
                    # Environmental, so the outcome is flagged retryable —
                    # but we do NOT rejoin in place: the peers saw the same
                    # loss and this room's membership is gone for good.
                    state["retryable"] = True
                    break
                message = protocol.decode_message(blob)
                if isinstance(message, protocol.Deliver):
                    delivered = Message(
                        msg_id=next(msg_ids), sender=None,
                        recipient=device.name, channel=plan.channel,
                        payload=_retuple(message.payload))
                    nbytes = len(blob) + framing.HEADER_SIZE
                    if config.offload:
                        await accel_bridge.run(
                            _deliver_step, device, delivered, nbytes,
                            scope=device.metrics_scope)
                    else:
                        with metrics.scope(device.metrics_scope):
                            _deliver_step(device, delivered, nbytes)
                    await _flush(writer, link)
                elif isinstance(message, protocol.Migrated):
                    # Live migration: the room moved to a peer shard and
                    # resumes exactly where it stopped.  Informational —
                    # same connection, same index, no crypto redone; keep
                    # reading.
                    metrics.bump("svc-client:migrations")
                    obslog.log_event(_log, "room-migrated",
                                     party=welcome.index, token=ready.token)
                elif isinstance(message, protocol.Abort):
                    metrics.bump("svc-client:room-aborts")
                    obslog.log_event(_log, "room-abort",
                                     party=welcome.index, token=ready.token,
                                     abort_reason=message.reason)
                    if message.reason in _RETRYABLE_ABORTS:
                        raise _SessionRetry("rejoin-retries", message.reason)
                    state["retryable"] = (
                        message.reason in _RETRYABLE_OUTCOME_ABORTS)
                    break
                elif isinstance(message, protocol.Error):
                    metrics.bump("svc-client:server-errors")
                    obslog.log_event(_log, "server-error",
                                     party=welcome.index, token=ready.token)
                    break
                else:
                    raise ProtocolError(
                        f"unexpected {type(message).__name__} from server")

        metrics.observe("hs:latency", loop.time() - hs_started)
        if device.outcome is not None:
            try:
                await _send(writer, protocol.Done(), config.max_frame)
            except (ConnectionError, OSError):
                pass        # outcome already decided; DONE is best-effort
        outcome = device.outcome or HandshakeOutcome(
            index=device.index, success=False,
            retryable=state["retryable"])
        obslog.log_event(_log, "outcome", party=welcome.index,
                         token=ready.token, success=outcome.success,
                         latency_s=round(loop.time() - hs_started, 6))
        return outcome
    finally:
        try:
            writer.close()
        except Exception:
            pass


def _deliver_step(device: HandshakeDevice, delivered: Message,
                  nbytes: int) -> None:
    """One delivery into the device state machine: count the frame, then
    step.  Runs under ``hs:<i>`` either inline on the event loop or on an
    accel bridge thread — the books are identical either way."""
    metrics.count_message_received(nbytes)
    metrics.bump(f"received:{device.name}")
    device.on_message(delivered)


async def _flush(writer: asyncio.StreamWriter, link: _DeviceLink) -> None:
    """Write every frame the device queued during its last step, honouring
    transport backpressure before handing control back to the read loop."""
    if not link.outbox:
        return
    for frame in link.outbox:
        writer.write(frame)
    link.outbox.clear()
    await writer.drain()


def _retuple(value):
    """Wire tuples survive the codec as tuples already; normalise any
    nested lists defensively so device payload checks hold."""
    if isinstance(value, list):
        return tuple(_retuple(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_retuple(v) for v in value)
    return value


async def _send(writer: asyncio.StreamWriter, message,
                max_frame: int) -> None:
    blob = protocol.encode_message(message)
    metrics.bump(f"svc-client:{type(message).__name__.lower()}")
    await framing.write_frame(writer, blob, max_frame)


async def _expect(reader: asyncio.StreamReader, config: ClientConfig,
                  expected_type, state: dict):
    """Read the next control message; ``None`` if the session ended
    terminally first (ABORT, ERROR) — the caller reports a failed outcome,
    marked retryable via ``state`` when the abort was environmental.
    Transient endings — a BUSY shed, a draining server's abort, or the
    server vanishing before the room activated — raise
    :class:`_SessionRetry` so the join loop backs off and re-HELLOs."""
    while True:
        blob = await framing.read_frame(reader, config.max_frame)
        if blob is None:
            # EOF before the room activated: the host went away between
            # accepting us and filling the room (shard death, restart).
            raise _SessionRetry("rejoin-retries", "server-vanished")
        message = protocol.decode_message(blob)
        if isinstance(message, expected_type):
            return message
        if isinstance(message, protocol.Migrated):
            # The (still-filling) room moved to a peer shard; WELCOME /
            # ROOM_READY will arrive from there over the same connection.
            metrics.bump("svc-client:migrations")
            continue
        if isinstance(message, protocol.Busy):
            raise _SessionRetry("busy-retries", message.reason)
        if isinstance(message, protocol.Abort):
            metrics.bump("svc-client:room-aborts")
            if message.reason in _RETRYABLE_ABORTS:
                raise _SessionRetry("rejoin-retries", message.reason)
            state["retryable"] = message.reason in _RETRYABLE_OUTCOME_ABORTS
            return None
        if isinstance(message, protocol.Error):
            metrics.bump("svc-client:room-aborts")
            return None
        raise ProtocolError(
            f"expected {expected_type.__name__}, got {type(message).__name__}")


async def query_status(host: str, port: int, *,
                       max_frame: int = framing.DEFAULT_MAX_FRAME,
                       timeout: float = 5.0) -> dict:
    """Fetch a running relay's live telemetry snapshot.

    Opens a fresh connection, sends the one-shot STATUS query and returns
    the decoded JSON document (see :meth:`RendezvousServer.status`).
    Raises :class:`~repro.errors.TransportError` if the server closes
    without replying, and propagates connection errors as-is."""
    async def _query() -> dict:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await _send(writer, protocol.Status(), max_frame)
            blob = await framing.read_frame(reader, max_frame)
            if blob is None:
                raise TransportError("server closed without a STATUS reply")
            message = protocol.decode_message(blob)
            if not isinstance(message, protocol.StatusReply):
                raise ProtocolError(
                    f"expected STATUS_REPLY, got {type(message).__name__}")
            return json.loads(message.body)
        finally:
            try:
                writer.close()
            except Exception:
                pass

    return await asyncio.wait_for(_query(), timeout)


async def run_room(members: Sequence[object], config: ClientConfig,
                   policy: Optional[HandshakePolicy] = None,
                   rngs: Optional[Sequence[random.Random]] = None,
                   ) -> List[HandshakeOutcome]:
    """Drive all ``members`` of one room concurrently (loopback helper for
    tests, benchmarks and the CLI).  Returns outcomes in roster-join order
    (member i joins first and receives index i)."""
    if rngs is None:
        rngs = [random.Random(7000 + i) for i in range(len(members))]
    cfg = replace(config, m=len(members))
    tasks = []
    for i, member in enumerate(members):
        joined = asyncio.Event()
        task = asyncio.ensure_future(
            join_room(member, cfg, policy, rngs[i], joined=joined))
        tasks.append(task)
        # Wait until the server assigned this member's index before
        # starting the next one: join order = roster index, keeping
        # outcomes aligned with ``members``.  If the join dies before
        # WELCOME the task itself completes and we move on.
        waiter = asyncio.ensure_future(joined.wait())
        await asyncio.wait([waiter, task],
                           return_when=asyncio.FIRST_COMPLETED)
        waiter.cancel()
    return list(await asyncio.gather(*tasks))
