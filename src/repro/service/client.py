"""Async participant driver: one GCD party over the rendezvous service.

:func:`join_room` connects a member to the server, joins a named room, and
drives a :class:`repro.net.runner.HandshakeDevice` — the exact state
machine the in-process simulator runs — by translating between device
broadcasts and BROADCAST/DELIVER frames.  Because the device code and the
payload encoding are shared, per-party operation counts (modexp, messages
sent/received in scope ``hs:<i>``) are identical across the synchronous
engine, the simulator, and this transport — asserted by the
engine-equivalence tests.

Failure handling: connect retries with exponential backoff + jitter, an
overall deadline, and explicit failed :class:`~repro.core.handshake.
HandshakeOutcome` results on room abort, connection loss, or timeout —
a client never hangs and never raises out of :func:`join_room` for
protocol-level failures.

Observability (docs/OBSERVABILITY.md): connect attempts and handshakes
are span-traced (``connect`` / ``handshake`` with ``transport="socket"``),
end-to-end latency feeds the ``hs:latency`` histogram, and lifecycle
events (retries, aborts, outcomes) go through the redacting structured
logger — identified by roster index and random room token only.
:func:`query_status` fetches the live telemetry snapshot a running relay
serves on the STATUS control query.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro import metrics
from repro.accel import bridge as accel_bridge
from repro.core.handshake import HandshakeOutcome, HandshakePolicy
from repro.errors import EncodingError, ProtocolError, TransportError
from repro.net.runner import HandshakeDevice, SessionPlan
from repro.net.simulator import BROADCAST, Message
from repro.obs import logging as obslog
from repro.obs import spans as obs
from repro.service import framing, protocol

_log = obslog.get_logger("repro.service.client")


@dataclass
class ClientConfig:
    """Connection/session tunables for one participant."""

    host: str = "127.0.0.1"
    port: int = 0
    room: str = "handshake"
    m: int = 2
    max_frame: int = framing.DEFAULT_MAX_FRAME
    connect_retries: int = 4
    backoff_base: float = 0.05     # first retry delay, seconds
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5    # uniform extra fraction of the delay
    deadline: float = 30.0         # overall cap: connect -> outcome
    #: Run device crypto steps on the accel bridge instead of the event
    #: loop.  Counts stay identical (the step runs under the same metric
    #: scope with the caller's recorder pinned); only the thread changes.
    offload: bool = False


class _DeviceLink:
    """Duck-types the :class:`~repro.net.simulator.Network` surface a
    :class:`Party` uses (``send``): outgoing broadcasts are encoded to
    frames and buffered; the client coroutine flushes them to the socket
    after each device step.  Counting happens here, at enqueue, inside the
    device's ``hs:<i>`` scope — mirroring ``Network.send``."""

    def __init__(self, max_frame: int) -> None:
        self.max_frame = max_frame
        self.outbox: List[bytes] = []

    def send(self, sender: str, recipient: str, payload: object,
             channel: str = "p2p") -> None:
        if recipient != BROADCAST:
            raise ProtocolError(
                "the rendezvous transport only relays broadcasts")
        blob = protocol.encode_message(protocol.Broadcast(payload=payload))
        frame = framing.encode_frame(blob, self.max_frame)
        metrics.count_message_sent(len(frame))
        metrics.bump(f"sent:{sender}")
        self.outbox.append(frame)


async def _connect(config: ClientConfig, rng: random.Random):
    """Open the TCP connection, retrying with backoff + jitter."""
    delay = config.backoff_base
    last_error: Optional[Exception] = None
    with obs.span("connect") as span:
        for attempt in range(config.connect_retries + 1):
            try:
                streams = await asyncio.open_connection(
                    config.host, config.port)
                span.end(attempts=attempt + 1)
                return streams
            except OSError as exc:
                last_error = exc
                if attempt == config.connect_retries:
                    break
                metrics.bump("svc-client:retries")
                obslog.log_event(_log, "connect-retry", attempt=attempt + 1,
                                 delay_s=round(delay, 4),
                                 error=type(exc).__name__)
                await asyncio.sleep(
                    delay * (1.0 + config.backoff_jitter * rng.random()))
                delay *= config.backoff_factor
        span.end(attempts=config.connect_retries + 1, failed=True)
    raise TransportError(
        f"could not connect to {config.host}:{config.port} after "
        f"{config.connect_retries + 1} attempts: {last_error}")


async def join_room(member, config: ClientConfig,
                    policy: Optional[HandshakePolicy] = None,
                    rng: Optional[random.Random] = None,
                    joined: Optional[asyncio.Event] = None) -> HandshakeOutcome:
    """Run one participant through a complete rendezvous handshake.

    Always returns a :class:`HandshakeOutcome`; transport failures, room
    aborts and the overall deadline all surface as ``success=False``
    outcomes (``index`` is ``-1`` if the failure precedes index
    assignment).  Only programming errors escape as exceptions.
    ``joined`` (if given) is set once the server has assigned an index —
    :func:`run_room` uses it to make join order deterministic.
    """
    rng = rng if rng is not None else random.Random()
    state = {"index": -1, "joined": joined}
    try:
        return await asyncio.wait_for(
            _join(member, config, policy, rng, state), config.deadline)
    except asyncio.TimeoutError:
        metrics.bump("svc-client:deadline-expired")
    except (TransportError, ConnectionError, OSError,
            EncodingError, asyncio.IncompleteReadError):
        metrics.bump("svc-client:transport-failures")
    return HandshakeOutcome(index=state["index"], success=False)


async def _join(member, config: ClientConfig,
                policy: Optional[HandshakePolicy],
                rng: random.Random, state: dict) -> HandshakeOutcome:
    reader, writer = await _connect(config, rng)
    msg_ids = itertools.count(1)
    try:
        await _send(writer, protocol.Hello(room=config.room, m=config.m),
                    config.max_frame)
        welcome = await _expect(reader, config, protocol.Welcome)
        if welcome is None:
            return HandshakeOutcome(index=-1, success=False)
        state["index"] = welcome.index
        if state.get("joined") is not None:
            state["joined"].set()
        ready = await _expect(reader, config, protocol.RoomReady)
        if ready is None:
            return HandshakeOutcome(index=welcome.index, success=False)

        plan = SessionPlan(
            session_id=ready.token,
            roster=tuple(f"device-{i}" for i in range(welcome.m)))
        link = _DeviceLink(config.max_frame)
        device = HandshakeDevice(f"device-{welcome.index}", member, plan,
                                 policy, rng)
        device.attached(link)
        hs_started = time.perf_counter()
        with obs.span("handshake", m=welcome.m, transport="socket",
                      party=welcome.index, token=ready.token):
            if config.offload:
                await accel_bridge.run(device.start,
                                       scope=device.metrics_scope)
            else:
                with metrics.scope(device.metrics_scope):
                    device.start()
            await _flush(writer, link)

            while device.outcome is None:
                blob = await framing.read_frame(reader, config.max_frame)
                if blob is None:    # server closed: room died under us
                    break
                message = protocol.decode_message(blob)
                if isinstance(message, protocol.Deliver):
                    delivered = Message(
                        msg_id=next(msg_ids), sender=None,
                        recipient=device.name, channel=plan.channel,
                        payload=_retuple(message.payload))
                    nbytes = len(blob) + framing.HEADER_SIZE
                    if config.offload:
                        await accel_bridge.run(
                            _deliver_step, device, delivered, nbytes,
                            scope=device.metrics_scope)
                    else:
                        with metrics.scope(device.metrics_scope):
                            _deliver_step(device, delivered, nbytes)
                    await _flush(writer, link)
                elif isinstance(message, protocol.Abort):
                    metrics.bump("svc-client:room-aborts")
                    obslog.log_event(_log, "room-abort",
                                     party=welcome.index, token=ready.token,
                                     abort_reason=message.reason)
                    break
                elif isinstance(message, protocol.Error):
                    metrics.bump("svc-client:server-errors")
                    obslog.log_event(_log, "server-error",
                                     party=welcome.index, token=ready.token)
                    break
                else:
                    raise ProtocolError(
                        f"unexpected {type(message).__name__} from server")

        metrics.observe("hs:latency", time.perf_counter() - hs_started)
        if device.outcome is not None:
            try:
                await _send(writer, protocol.Done(), config.max_frame)
            except (ConnectionError, OSError):
                pass        # outcome already decided; DONE is best-effort
        outcome = device.outcome or HandshakeOutcome(index=device.index,
                                                     success=False)
        obslog.log_event(_log, "outcome", party=welcome.index,
                         token=ready.token, success=outcome.success,
                         latency_s=round(
                             time.perf_counter() - hs_started, 6))
        return outcome
    finally:
        try:
            writer.close()
        except Exception:
            pass


def _deliver_step(device: HandshakeDevice, delivered: Message,
                  nbytes: int) -> None:
    """One delivery into the device state machine: count the frame, then
    step.  Runs under ``hs:<i>`` either inline on the event loop or on an
    accel bridge thread — the books are identical either way."""
    metrics.count_message_received(nbytes)
    metrics.bump(f"received:{device.name}")
    device.on_message(delivered)


async def _flush(writer: asyncio.StreamWriter, link: _DeviceLink) -> None:
    """Write every frame the device queued during its last step, honouring
    transport backpressure before handing control back to the read loop."""
    if not link.outbox:
        return
    for frame in link.outbox:
        writer.write(frame)
    link.outbox.clear()
    await writer.drain()


def _retuple(value):
    """Wire tuples survive the codec as tuples already; normalise any
    nested lists defensively so device payload checks hold."""
    if isinstance(value, list):
        return tuple(_retuple(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_retuple(v) for v in value)
    return value


async def _send(writer: asyncio.StreamWriter, message,
                max_frame: int) -> None:
    blob = protocol.encode_message(message)
    metrics.bump(f"svc-client:{type(message).__name__.lower()}")
    await framing.write_frame(writer, blob, max_frame)


async def _expect(reader: asyncio.StreamReader, config: ClientConfig,
                  expected_type):
    """Read the next control message; ``None`` if the session ended first
    (EOF, ABORT, ERROR) — the caller reports a failed outcome."""
    while True:
        blob = await framing.read_frame(reader, config.max_frame)
        if blob is None:
            return None
        message = protocol.decode_message(blob)
        if isinstance(message, expected_type):
            return message
        if isinstance(message, (protocol.Abort, protocol.Error)):
            metrics.bump("svc-client:room-aborts")
            return None
        raise ProtocolError(
            f"expected {expected_type.__name__}, got {type(message).__name__}")


async def query_status(host: str, port: int, *,
                       max_frame: int = framing.DEFAULT_MAX_FRAME,
                       timeout: float = 5.0) -> dict:
    """Fetch a running relay's live telemetry snapshot.

    Opens a fresh connection, sends the one-shot STATUS query and returns
    the decoded JSON document (see :meth:`RendezvousServer.status`).
    Raises :class:`~repro.errors.TransportError` if the server closes
    without replying, and propagates connection errors as-is."""
    async def _query() -> dict:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            await _send(writer, protocol.Status(), max_frame)
            blob = await framing.read_frame(reader, max_frame)
            if blob is None:
                raise TransportError("server closed without a STATUS reply")
            message = protocol.decode_message(blob)
            if not isinstance(message, protocol.StatusReply):
                raise ProtocolError(
                    f"expected STATUS_REPLY, got {type(message).__name__}")
            return json.loads(message.body)
        finally:
            try:
                writer.close()
            except Exception:
                pass

    return await asyncio.wait_for(_query(), timeout)


async def run_room(members: Sequence[object], config: ClientConfig,
                   policy: Optional[HandshakePolicy] = None,
                   rngs: Optional[Sequence[random.Random]] = None,
                   ) -> List[HandshakeOutcome]:
    """Drive all ``members`` of one room concurrently (loopback helper for
    tests, benchmarks and the CLI).  Returns outcomes in roster-join order
    (member i joins first and receives index i)."""
    if rngs is None:
        rngs = [random.Random(7000 + i) for i in range(len(members))]
    cfg = replace(config, m=len(members))
    tasks = []
    for i, member in enumerate(members):
        joined = asyncio.Event()
        task = asyncio.ensure_future(
            join_room(member, cfg, policy, rngs[i], joined=joined))
        tasks.append(task)
        # Wait until the server assigned this member's index before
        # starting the next one: join order = roster index, keeping
        # outcomes aligned with ``members``.  If the join dies before
        # WELCOME the task itself completes and we move on.
        waiter = asyncio.ensure_future(joined.wait())
        await asyncio.wait([waiter, task],
                           return_when=asyncio.FIRST_COMPLETED)
        waiter.cancel()
    return list(await asyncio.gather(*tasks))
