"""Typed client<->server control messages for the rendezvous service.

Every message is a frozen dataclass serialized through the same
:mod:`repro.core.wire` codec the handshake payloads use — one tagged tuple
per message, so a wire observer sees a uniform self-describing format and
the codec's malformed-input rejection covers control traffic too.

Session flow::

    C -> S   HELLO(room, m, trace)     join rendezvous point ``room``;
                                       ``trace`` is an optional compact
                                       trace context (16 hex chars, see
                                       repro.obs.spans) — the server
                                       parents the room's spans under it
                                       so one room is one trace across
                                       processes; "" means "no context"
                                       and a malformed value is ignored,
                                       never an error
    S -> C   WELCOME(room, index, m)   assigned participant index
    S -> C   ROOM_READY(room, token, m)   all m joined; ``token`` is the
                                       random, unlinkable session id
    C -> S   BROADCAST(payload)        relay to every other room member
    S -> C   DELIVER(payload)          a relayed broadcast (sender-less:
                                       the relay strips transport identity,
                                       mirroring the anonymous channel)
    C -> S   DONE()                    handshake concluded locally
    S -> C   ABORT(reason)             room torn down (timeout, lost peer)
    S -> C   BUSY(reason)              overload shed: the server (or the
                                       cluster shard behind a router) cannot
                                       host a new room right now; transient
                                       — the client retries with backoff
    S -> C   MIGRATED(token)           live migration: the room moved to a
                                       peer shard and resumes exactly where
                                       it stopped — informational; the
                                       client keeps its connection, index
                                       and crypto state and just keeps
                                       reading
    both     ERROR(reason)             protocol violation; connection drops

Migration plumbing (router <-> shard only, never originated by clients;
docs/PROTOCOL.md "Live migration")::

    R -> S   QUIESCE()                 frame-boundary sentinel: no more
                                       frames from this member until the
                                       room moves
    R -> S   ATTACH(token, index)      bind a fresh connection to roster
                                       slot ``index`` of a restored room

Introspection (one-shot, in place of HELLO)::

    C -> S   STATUS()                  ask the relay for live telemetry
    S -> C   STATUS_REPLY(body)        JSON: room counts by state, queue
                                       depths, histogram summaries — only
                                       aggregates and random room tokens,
                                       never member identifiers (the
                                       anonymity rule applies to exported
                                       telemetry, docs/OBSERVABILITY.md)

``BROADCAST``/``DELIVER`` payloads are the exact tuples
:class:`repro.net.runner.HandshakeDevice` exchanges over the simulator —
the service adds framing and relay, not a new message format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Type

from repro.core import wire
from repro.errors import ProtocolError


@dataclass(frozen=True)
class Hello:
    room: str
    m: int
    #: Optional trace context (defaulted so ``Hello(room, m)`` keeps
    #: working); carries only a random id — never identity material.
    trace: str = ""

    KIND = "svc/hello"


@dataclass(frozen=True)
class Welcome:
    room: str
    index: int
    m: int

    KIND = "svc/welcome"


@dataclass(frozen=True)
class RoomReady:
    room: str
    token: str
    m: int

    KIND = "svc/ready"


@dataclass(frozen=True)
class Broadcast:
    payload: object

    KIND = "svc/bcast"


@dataclass(frozen=True)
class Deliver:
    payload: object

    KIND = "svc/deliver"


@dataclass(frozen=True)
class Done:
    KIND = "svc/done"


@dataclass(frozen=True)
class Abort:
    reason: str

    KIND = "svc/abort"


@dataclass(frozen=True)
class Busy:
    """Typed overload shed (admission control / drain): unlike ERROR this
    is *retryable* — the client backs off and re-sends HELLO, and a cluster
    router will re-place the room if the shard is draining or dead."""

    reason: str

    KIND = "svc/busy"


@dataclass(frozen=True)
class Error:
    reason: str

    KIND = "svc/error"


@dataclass(frozen=True)
class Quiesce:
    """Router -> shard sentinel, injected at a frame boundary on one
    member connection when a drain-migration begins.  Receiving it tells
    the shard "no further frames will arrive from this member until the
    room moves"; once every live member of a room is quiesced the shard
    finishes the FIFO, snapshots the room and ships the checkpoint.
    Never sent by clients; a standalone server ignores it for roomless
    connections."""

    KIND = "svc/quiesce"


@dataclass(frozen=True)
class Attach:
    """Router -> shard, in place of HELLO on a fresh connection: bind
    this connection to roster slot ``index`` of the *restored* room
    identified by ``token``.  The client behind the splice keeps its
    original WELCOME/index — attach re-creates only the server side of
    the pairing, which is why migration needs no re-HELLO."""

    token: str
    index: int

    KIND = "svc/attach"


@dataclass(frozen=True)
class Migrated:
    """Server/router -> client: your room moved to a peer shard; the
    relay resumes exactly where it stopped.  Informational — the client
    keeps its connection, keeps its roster index, re-runs no crypto, and
    simply continues reading.  ``token`` names the (unchanged) session
    token so logs line up across the hop."""

    token: str

    KIND = "svc/migrated"


@dataclass(frozen=True)
class Status:
    KIND = "svc/status"


@dataclass(frozen=True)
class StatusReply:
    body: str          # JSON document (aggregates only; see module doc)

    KIND = "svc/status-reply"


_REGISTRY: Dict[str, Tuple[Type, Tuple[str, ...]]] = {
    cls.KIND: (cls, tuple(cls.__dataclass_fields__))  # type: ignore[attr-defined]
    for cls in (Hello, Welcome, RoomReady, Broadcast, Deliver, Done, Abort,
                Busy, Error, Quiesce, Attach, Migrated, Status, StatusReply)
}

_FIELD_TYPES = {"room": str, "reason": str, "token": str, "m": int,
                "index": int, "body": str, "trace": str}


def encode_message(message) -> bytes:
    """Serialize one control message to wire bytes."""
    kind = getattr(type(message), "KIND", None)
    if kind not in _REGISTRY:
        raise ProtocolError(f"not a service message: {type(message).__name__}")
    _, fields = _REGISTRY[kind]
    return wire.dumps((kind,) + tuple(getattr(message, f) for f in fields))


def decode_message(blob: bytes):
    """Parse wire bytes into a typed message.

    Raises :class:`~repro.errors.EncodingError` on junk bytes and
    :class:`~repro.errors.ProtocolError` on a well-formed value that is not
    a valid service message (unknown kind, wrong arity, wrong field type).
    """
    value = wire.loads(blob)  # EncodingError propagates
    if not isinstance(value, tuple) or not value or not isinstance(value[0], str):
        raise ProtocolError("service frame is not a tagged message tuple")
    kind, fields = value[0], value[1:]
    entry = _REGISTRY.get(kind)
    if entry is None:
        raise ProtocolError(f"unknown service message kind {kind!r}")
    cls, names = entry
    if len(fields) != len(names):
        raise ProtocolError(f"{kind} arity mismatch: got {len(fields)} fields")
    for name, field_value in zip(names, fields):
        expected = _FIELD_TYPES.get(name)
        if expected is not None and not isinstance(field_value, expected):
            raise ProtocolError(f"{kind} field {name!r} has wrong type")
    return cls(*fields)


def payload_kind(payload: object) -> str:
    """The handshake-level kind of a relayed payload ("dgka", "tag",
    "phase3", ...) — what fault injection keys on."""
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        return payload[0]
    return "?"


__all__ = [
    "Hello", "Welcome", "RoomReady", "Broadcast", "Deliver", "Done",
    "Abort", "Busy", "Error", "Quiesce", "Attach", "Migrated",
    "Status", "StatusReply",
    "encode_message", "decode_message", "payload_kind",
]
