"""Asyncio rendezvous server: many concurrent handshake rooms over TCP.

The server realises the paper's anonymous broadcast channel as an
*untrusted relay*.  Clients meet at a named rendezvous point (a "room");
once ``m`` of them have arrived the room activates under a random,
unlinkable session token and every BROADCAST a member sends is fanned out
to the other members through a single per-room FIFO queue — the same
total-order guarantee :class:`repro.net.simulator.Network` gives, so the
:class:`repro.net.runner.HandshakeDevice` state machines run unchanged.
Deliveries carry no transport-level sender identity (the relay strips it),
mirroring the simulator's anonymous channels.

Robustness machinery:

* **room fill timeout** — a room that never reaches ``m`` members aborts;
* **handshake timeout** — an active room that does not complete in time
  aborts (the backstop that turns silent packet loss into explicit
  failure);
* **per-connection backpressure** — each connection owns a *bounded* send
  queue drained by a writer task; a slow reader stalls only its own room,
  which the handshake timeout then reaps;
* **graceful drain** — :meth:`RendezvousServer.shutdown` stops accepting,
  gives active rooms a drain window to finish, then aborts stragglers.

Observability (docs/OBSERVABILITY.md): accepts, frames in/out, room
lifecycle and every error path (abort/error frames sent, fill/handshake/
idle timeouts fired, send-queue drops) land in the :mod:`repro.metrics`
layer under ``svc:*`` bumps; each room's relay loop runs inside scope
``room:<token>`` so relayed messages and room wall time are attributable
per room; per-frame relay latency feeds the ``svc:relay-latency``
histogram; room lifecycle (fill → relay) is span-traced when tracing is
on; structured JSON logs go through :mod:`repro.obs.logging` with the
anonymity redaction rule (random room tokens and roster indices only —
never rendezvous names, member identifiers, or payload bytes); and a
one-shot ``STATUS`` control query (see :meth:`RendezvousServer.status`)
returns live room counts, queue depths and histogram snapshots from a
running relay.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import secrets
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import accel, metrics, revocation
from repro.accel import bridge as accel_bridge
from repro.errors import EncodingError, ProtocolError
from repro.obs import logging as obslog
from repro.obs import spans as obs
from repro.service import framing, protocol
from repro.service.faults import FaultInjector

_log = obslog.get_logger("repro.service.server")


@dataclass
class ServerConfig:
    """Tunables for one :class:`RendezvousServer`."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral (read .port after start)
    max_frame: int = framing.DEFAULT_MAX_FRAME
    room_fill_timeout: float = 30.0   # waiting for m members
    handshake_timeout: float = 60.0   # active room must complete
    idle_timeout: float = 60.0        # per-connection silent-read limit
    send_queue_limit: int = 64        # frames buffered per connection
    drain_timeout: float = 5.0        # shutdown grace for active rooms
    max_room_size: int = 64
    #: Admission ceiling over *open* (filling + active) rooms.  A HELLO
    #: that would open a room beyond the ceiling is shed with a typed
    #: BUSY frame — a transient, retryable condition the client answers
    #: with backoff (and a cluster router answers with re-placement).
    #: ``None`` disables shedding.  Joining an already-filling room is
    #: always admitted: the room charged its slot when it opened.
    max_rooms: Optional[int] = None
    #: Move frame codec work (fan-out encodes, large-frame decodes) onto
    #: the accel bridge threads so the event loop stays responsive while
    #: relaying Phase III payloads.  Counting is unchanged: frames are
    #: still counted on the loop, per recipient, under the room scope.
    offload: bool = False
    offload_threshold: int = 4096  # bridge-decode frames at least this big
    faults: Optional[FaultInjector] = None
    #: Deterministic token source for tests; production uses ``secrets``.
    token_rng: Optional[random.Random] = None


class _Connection:
    """One client socket: reader loop (the handler task) plus a writer
    task draining a bounded queue — the backpressure boundary."""

    _CLOSE = object()

    def __init__(self, conn_id: int, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, limit: int) -> None:
        self.conn_id = conn_id
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=limit)
        self.index: Optional[int] = None
        self.room: Optional["_Room"] = None
        self.done = False
        self.kicked = False
        self.writer_task: Optional[asyncio.Task] = None

    def start_writer(self) -> None:
        self.writer_task = asyncio.ensure_future(self._writer_loop())

    async def _writer_loop(self) -> None:
        try:
            while True:
                frame = await self.queue.get()
                if frame is self._CLOSE:
                    break
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._close_transport()

    def _close_transport(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass

    async def send(self, message) -> None:
        """Queue a control message; awaits when the bounded queue is full
        (backpressure propagates to the caller — the room relay)."""
        blob = protocol.encode_message(message)
        await self.send_frame(framing.encode_frame(blob))

    async def send_frame(self, frame: bytes) -> None:
        """Queue an already-encoded frame — the fan-out path encodes each
        relay once and hands the same bytes to every recipient."""
        metrics.count_message_sent(len(frame))
        await self.queue.put(frame)

    def send_best_effort(self, message) -> None:
        """Non-blocking send for abort/error paths: if the queue is full
        the peer is not reading — just close, EOF carries the signal."""
        try:
            blob = protocol.encode_message(message)
            self.queue.put_nowait(framing.encode_frame(blob))
        except asyncio.QueueFull:
            metrics.bump("svc:send-queue-drops")
            obslog.log_event(_log, "send-queue-drop", conn=self.conn_id,
                             frame=type(message).__name__)

    def close(self) -> None:
        """Ask the writer task to flush queued frames then close."""
        try:
            self.queue.put_nowait(self._CLOSE)
        except asyncio.QueueFull:
            if self.writer_task is not None:
                self.writer_task.cancel()
            self._close_transport()

    def kick(self) -> None:
        """Hard-disconnect (fault injection): drop without flushing."""
        self.kicked = True
        if self.writer_task is not None:
            self.writer_task.cancel()
        self._close_transport()


class _Room:
    """One rendezvous room: roster, FIFO relay, lifecycle state."""

    FILLING, ACTIVE, CLOSED = "filling", "active", "closed"

    def __init__(self, server: "RendezvousServer", name: str, m: int,
                 token: str, trace: Optional[str] = None) -> None:
        self.server = server
        self.name = name
        self.m = m
        self.token = token
        self.state = self.FILLING
        self.members: List[_Connection] = []
        self.done: set = set()
        self.outcome: Optional[str] = None   # "completed" | abort reason
        self.queue: asyncio.Queue = asyncio.Queue()
        self.relay_task: Optional[asyncio.Task] = None
        self.finished = asyncio.Event()
        self.opened_at = time.perf_counter()
        # Lifecycle spans (fill -> relay under one root); identified by
        # the unlinkable token only — never the rendezvous name.  The
        # root adopts the opening member's trace context, so the room's
        # server-side spans join the client's trace across the wire.
        self._span_root = obs.start_span("room", parent=None, trace=trace,
                                         token=token, m=m)
        self._span_stage = obs.start_span("room:fill",
                                          parent=self._span_root,
                                          token=token)

    @property
    def scope(self) -> str:
        return f"room:{self.token}"

    # Filling --------------------------------------------------------------

    def add(self, conn: _Connection) -> int:
        index = len(self.members)
        self.members.append(conn)
        conn.index = index
        conn.room = self
        return index

    def activate(self) -> None:
        self.state = self.ACTIVE
        metrics.bump("svc:rooms-active")
        self._span_stage.end()
        self._span_stage = obs.start_span("room:relay",
                                          parent=self._span_root,
                                          token=self.token)
        obslog.log_event(_log, "room-active", token=self.token, m=self.m,
                         fill_s=round(time.perf_counter() - self.opened_at, 6))
        for conn in self.members:
            conn.send_best_effort(
                protocol.RoomReady(room=self.name, token=self.token, m=self.m))
        self.relay_task = asyncio.ensure_future(self._relay_loop())

    # Relay ----------------------------------------------------------------

    async def relay(self, sender_index: int, payload: object) -> None:
        await self.queue.put((sender_index, payload, time.perf_counter()))

    async def _relay_loop(self) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.server.config.handshake_timeout
        with metrics.scope(self.scope):
            while self.state == self.ACTIVE:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    metrics.bump("svc:handshake-timeouts")
                    self.abort("handshake-timeout")
                    return
                try:
                    sender, payload, enqueued = await asyncio.wait_for(
                        self.queue.get(), remaining)
                    await asyncio.wait_for(
                        self._fan_out(sender, payload),
                        deadline - loop.time())
                    # Queue-to-fanned-out latency of one relayed frame:
                    # the relay's own contribution to handshake latency
                    # (includes injected fault delays — honestly).
                    metrics.observe("svc:relay-latency",
                                    time.perf_counter() - enqueued)
                except asyncio.TimeoutError:
                    metrics.bump("svc:handshake-timeouts")
                    self.abort("handshake-timeout")
                    return
                except asyncio.CancelledError:
                    return

    async def _fan_out(self, sender: int, payload: object) -> None:
        faults = self.server.config.faults
        action = faults.action_for(sender, payload) if faults else None
        if action is not None and action.delay:
            await asyncio.sleep(action.delay)
        copies = 1 if action is None else action.copies
        if action is not None and action.disconnect_sender:
            metrics.bump("room-disconnects")
            victim = self.members[sender]
            victim.kick()
            # The victim's handler will observe the closed socket and
            # report the loss; abort proactively so survivors never wait
            # on the handshake timeout.
            self.abort("peer-disconnect")
            return
        if copies == 0:
            metrics.bump("room-drops")
            return
        message = protocol.Deliver(payload=payload)
        if self.server.config.offload:
            frame = await accel_bridge.run(_encode_deliver, message,
                                           scope=self.scope)
        else:
            frame = _encode_deliver(message)
        for _ in range(copies):
            for conn in self.members:
                if conn.index == sender or conn.kicked:
                    continue
                await conn.send_frame(frame)
            metrics.bump("room-relays")
        if copies > 1:
            metrics.bump("room-duplicates")

    # Lifecycle ------------------------------------------------------------

    def mark_done(self, conn: _Connection) -> None:
        conn.done = True
        self.done.add(conn.index)
        if self.state == self.ACTIVE and len(self.done) == self.m:
            self._finish("completed")
            metrics.bump("svc:rooms-completed")
            metrics.observe("svc:room-lifetime",
                            time.perf_counter() - self.opened_at)
            for member in self.members:
                member.close()

    def member_lost(self, conn: _Connection) -> None:
        """A member's connection dropped.  During fill: abort (indices are
        roster positions, they cannot be reassigned).  Active: abort unless
        the member had already concluded."""
        if self.state == self.CLOSED or conn.done:
            return
        self.abort("peer-disconnect" if self.state == self.ACTIVE
                   else "peer-left-while-filling")

    def abort(self, reason: str) -> None:
        if self.state == self.CLOSED:
            return
        self._finish(reason)
        metrics.bump("svc:rooms-aborted")
        metrics.bump(f"svc:abort:{reason}")
        for conn in self.members:
            if not conn.done and not conn.kicked:
                metrics.bump("svc:abort-frames")
                conn.send_best_effort(protocol.Abort(reason=reason))
            conn.close()

    def _finish(self, outcome: str) -> None:
        self.state = self.CLOSED
        self.outcome = outcome
        self._span_stage.end()
        self._span_root.end(outcome=outcome)
        obslog.log_event(_log, "room-closed", token=self.token,
                         outcome=outcome, members=len(self.members),
                         lifetime_s=round(
                             time.perf_counter() - self.opened_at, 6))
        self.server._room_closed(self)
        if self.relay_task is not None and self.relay_task is not asyncio.current_task():
            self.relay_task.cancel()
        self.finished.set()


def _encode_deliver(message) -> bytes:
    """Encode one DELIVER to a ready-to-send frame (bridge-friendly:
    pure CPU, no loop state)."""
    return framing.encode_frame(protocol.encode_message(message))


class RendezvousServer:
    """The rendezvous service: accept loop + room registry.

    Usage::

        server = RendezvousServer(ServerConfig(port=0))
        await server.start()
        ... clients connect to server.port ...
        await server.shutdown()

    Also usable as an async context manager.
    """

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self._server: Optional[asyncio.AbstractServer] = None
        self._filling: Dict[str, _Room] = {}
        self._rooms: Dict[str, _Room] = {}     # token -> room (all states)
        self._handlers: set = set()
        self._connections: set = set()         # live _Connection objects
        self._conn_ids = itertools.count(1)
        self._accepting = False
        self._started = 0.0
        self._open_rooms = 0           # filling + active (admission control)

    # Lifecycle ------------------------------------------------------------

    async def start(self) -> "RendezvousServer":
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        self._accepting = True
        self._started = time.perf_counter()
        obslog.log_event(_log, "server-start", port=self.port)
        return self

    async def __aenter__(self) -> "RendezvousServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting; drain active rooms, then abort stragglers."""
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for room in list(self._filling.values()):
            room.abort("server-shutdown")
        active = [r for r in self._rooms.values() if r.state == _Room.ACTIVE]
        if drain and active:
            waits = [r.finished.wait() for r in active]
            try:
                await asyncio.wait_for(asyncio.gather(*waits),
                                       self.config.drain_timeout)
            except asyncio.TimeoutError:
                pass
        for room in list(self._rooms.values()):
            if room.state != _Room.CLOSED:
                room.abort("server-shutdown")
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)

    # Introspection --------------------------------------------------------

    def room_outcomes(self) -> Dict[str, str]:
        """token -> "completed" / abort reason, for closed rooms."""
        return {t: r.outcome for t, r in self._rooms.items()
                if r.outcome is not None}

    def status(self) -> Dict[str, object]:
        """Live telemetry snapshot — what a STATUS query returns.

        Aggregates only (the anonymity rule, docs/OBSERVABILITY.md):
        room counts by state keyed to random tokens' existence, queue
        depths, ``svc:*`` counters and histogram summaries.  No rendezvous
        names, member identifiers or payload bytes appear."""
        states = {_Room.FILLING: 0, _Room.ACTIVE: 0, _Room.CLOSED: 0}
        relay_backlog = 0
        for room in self._rooms.values():
            states[room.state] += 1
            if room.state == _Room.ACTIVE:
                relay_backlog += room.queue.qsize()
        depths = [c.queue.qsize() for c in self._connections]
        outcomes: Dict[str, int] = {}
        for outcome in self.room_outcomes().values():
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        rec = metrics.current_recorder()
        counters = {name: value
                    for name, value in sorted(rec.total().extra.items())
                    if name.startswith(("svc:", "rev:"))}
        histograms = {name: hist.summary()
                      for name, hist in sorted(rec.histograms().items())}
        revocation_stats = revocation.stats()
        return {
            "uptime_s": round(time.perf_counter() - self._started, 3)
                        if self._started else 0.0,
            "accepting": self._accepting,
            "connections": len(self._connections),
            "rooms": {"filling": states[_Room.FILLING],
                      "active": states[_Room.ACTIVE],
                      "closed": states[_Room.CLOSED]},
            "admission": {"open_rooms": self._open_rooms,
                          "max_rooms": self.config.max_rooms},
            "outcomes": outcomes,
            "send_queues": {"total_depth": sum(depths),
                            "max_depth": max(depths, default=0)},
            "relay_backlog": relay_backlog,
            "counters": counters,
            "histograms": histograms,
            "accel": accel.stats(),
            # Omitted entirely when no revocation service runs in-process
            # (the common case for a pure relay).
            **({"revocation": revocation_stats}
               if revocation_stats["services"] else {}),
        }

    # Accept path ----------------------------------------------------------

    def _new_token(self) -> str:
        # Random and independent of the rendezvous name: logs, metric
        # scopes and on-wire ROOM_READY frames cannot be linked back to
        # the (possibly meaningful) name clients agreed on out of band.
        if self.config.token_rng is not None:
            return f"{self.config.token_rng.getrandbits(64):016x}"
        return secrets.token_hex(8)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn = _Connection(next(self._conn_ids), reader, writer,
                           self.config.send_queue_limit)
        self._handlers.add(asyncio.current_task())
        self._connections.add(conn)
        metrics.bump("svc:accepts")
        obslog.log_event(_log, "accept", conn=conn.conn_id)
        conn.start_writer()
        try:
            await self._session(conn)
        except (EncodingError, ProtocolError) as exc:
            metrics.bump("svc:protocol-errors")
            metrics.bump("svc:error-frames")
            # Only the error *class* is logged: ProtocolError messages can
            # quote the client-chosen rendezvous name, which must not
            # appear in telemetry (the wire Error frame still carries it —
            # that goes to the offending client only).
            obslog.log_event(_log, "protocol-error", conn=conn.conn_id,
                             error=type(exc).__name__)
            conn.send_best_effort(protocol.Error(reason=str(exc)))
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            metrics.bump("svc:connection-lost")
            obslog.log_event(_log, "connection-lost", conn=conn.conn_id)
        except asyncio.TimeoutError:
            metrics.bump("svc:idle-timeouts")
            metrics.bump("svc:error-frames")
            obslog.log_event(_log, "idle-timeout", conn=conn.conn_id)
            conn.send_best_effort(protocol.Error(reason="idle timeout"))
        except asyncio.CancelledError:
            pass
        finally:
            if conn.room is not None:
                conn.room.member_lost(conn)
            conn.close()
            self._connections.discard(conn)
            task = asyncio.current_task()
            if task in self._handlers:
                self._handlers.discard(task)

    async def _read_message(self, conn: _Connection):
        blob = await asyncio.wait_for(
            framing.read_frame(conn.reader, self.config.max_frame),
            self.config.idle_timeout)
        if blob is None:
            return None
        metrics.count_message_received(len(blob) + framing.HEADER_SIZE)
        if (self.config.offload
                and len(blob) >= self.config.offload_threshold):
            return await accel_bridge.run(protocol.decode_message, blob)
        return protocol.decode_message(blob)

    async def _session(self, conn: _Connection) -> None:
        hello = await self._read_message(conn)
        if hello is None:
            return
        if isinstance(hello, protocol.Status):
            # One-shot introspection query in place of HELLO.
            metrics.bump("svc:status-queries")
            await conn.send(protocol.StatusReply(body=json.dumps(
                self.status(), sort_keys=True)))
            return
        if not isinstance(hello, protocol.Hello):
            raise ProtocolError(f"expected HELLO, got {type(hello).__name__}")
        if not 2 <= hello.m <= self.config.max_room_size:
            raise ProtocolError(
                f"room size {hello.m} outside [2, {self.config.max_room_size}]")
        if not self._accepting:
            # Draining is transient, not a protocol violation: shed with a
            # retryable BUSY so the client backs off (and, behind a cluster
            # router, gets re-placed onto a live shard).
            metrics.bump("svc:busy-sheds")
            metrics.bump("svc:busy:draining")
            obslog.log_event(_log, "busy-shed", conn=conn.conn_id,
                             busy_reason="draining")
            await conn.send(protocol.Busy(reason="draining"))
            return
        room = self._filling.get(hello.room)
        if room is None:
            if (self.config.max_rooms is not None
                    and self._open_rooms >= self.config.max_rooms):
                metrics.bump("svc:busy-sheds")
                metrics.bump("svc:busy:at-capacity")
                obslog.log_event(_log, "busy-shed", conn=conn.conn_id,
                                 busy_reason="at-capacity")
                await conn.send(protocol.Busy(reason="at-capacity"))
                return
            # The opening member's trace context (if any) becomes the
            # room trace; later members' contexts are ignored — one room,
            # one trace.  Lenient: malformed contexts mean "no context".
            room = _Room(self, hello.room, hello.m, self._new_token(),
                         trace=obs.valid_trace(hello.trace))
            self._filling[hello.room] = room
            self._rooms[room.token] = room
            self._open_rooms += 1
            metrics.bump("svc:rooms-opened")
            asyncio.get_running_loop().call_later(
                self.config.room_fill_timeout, self._fill_timeout, room)
        elif room.m != hello.m:
            raise ProtocolError(
                f"room {hello.room!r} expects m={room.m}, not {hello.m}")
        index = room.add(conn)
        await conn.send(protocol.Welcome(room=room.name, index=index, m=room.m))
        if len(room.members) == room.m:
            del self._filling[room.name]
            room.activate()
        # Main read loop: relay broadcasts until the client signals DONE
        # and closes, or the room dies under us (closed socket -> except).
        while True:
            message = await self._read_message(conn)
            if message is None:
                return
            if isinstance(message, protocol.Broadcast):
                if room.state != _Room.ACTIVE:
                    raise ProtocolError("broadcast outside an active room")
                await room.relay(conn.index, message.payload)
            elif isinstance(message, protocol.Done):
                room.mark_done(conn)
            elif isinstance(message, protocol.Hello):
                raise ProtocolError("duplicate HELLO")
            else:
                raise ProtocolError(
                    f"unexpected {type(message).__name__} from client")

    def _fill_timeout(self, room: _Room) -> None:
        if room.state == _Room.FILLING:
            metrics.bump("svc:fill-timeouts")
            room.abort("fill-timeout")

    def _room_closed(self, room: _Room) -> None:
        self._filling.pop(room.name, None)
        self._open_rooms = max(0, self._open_rooms - 1)
