"""Asyncio rendezvous server: many concurrent handshake rooms over TCP.

The server realises the paper's anonymous broadcast channel as an
*untrusted relay*.  Clients meet at a named rendezvous point (a "room");
once ``m`` of them have arrived the room activates under a random,
unlinkable session token and every BROADCAST a member sends is fanned out
to the other members through a single per-room FIFO queue — the same
total-order guarantee :class:`repro.net.simulator.Network` gives, so the
:class:`repro.net.runner.HandshakeDevice` state machines run unchanged.
Deliveries carry no transport-level sender identity (the relay strips it),
mirroring the simulator's anonymous channels.

Robustness machinery:

* **room fill timeout** — a room that never reaches ``m`` members aborts;
* **handshake timeout** — an active room that does not complete in time
  aborts (the backstop that turns silent packet loss into explicit
  failure);
* **per-connection backpressure** — each connection owns a *bounded* send
  queue drained by a writer task; a slow reader stalls only its own room,
  which the handshake timeout then reaps;
* **graceful drain** — :meth:`RendezvousServer.shutdown` stops accepting,
  gives active rooms a drain window to finish, then aborts stragglers.

Observability (docs/OBSERVABILITY.md): accepts, frames in/out, room
lifecycle and every error path (abort/error frames sent, fill/handshake/
idle timeouts fired, send-queue drops) land in the :mod:`repro.metrics`
layer under ``svc:*`` bumps; each room's relay loop runs inside scope
``room:<token>`` so relayed messages and room wall time are attributable
per room; per-frame relay latency feeds the ``svc:relay-latency``
histogram; room lifecycle (fill → relay) is span-traced when tracing is
on; structured JSON logs go through :mod:`repro.obs.logging` with the
anonymity redaction rule (random room tokens and roster indices only —
never rendezvous names, member identifiers, or payload bytes); and a
one-shot ``STATUS`` control query (see :meth:`RendezvousServer.status`)
returns live room counts, queue depths and histogram snapshots from a
running relay.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import random
import secrets
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import accel, metrics, revocation
from repro.accel import bridge as accel_bridge
from repro.errors import EncodingError, ProtocolError
from repro.gate import checkpoint as gate_checkpoint
from repro.gate.checkpoint import RoomCheckpoint
from repro.obs import logging as obslog
from repro.obs import spans as obs
from repro.service import framing, protocol
from repro.service.faults import FaultInjector

_log = obslog.get_logger("repro.service.server")

#: Relay-queue sentinel: "every frame before this has been fanned out and
#: no more are coming — snapshot the room now" (drain-migration quiesce).
_QUIESCE = object()


def _scope_counts(scope_name: str) -> Dict[str, int]:
    """The replayable counter book of one scope — what a room checkpoint
    ships so the cluster-aggregate books survive the donor shard's death
    (:func:`repro.metrics.replay` on the restoring side)."""
    counters = metrics.current_recorder().snapshot().get(scope_name)
    if counters is None:
        return {}
    counts: Dict[str, int] = {}
    for name in metrics.REPLAY_FIELDS:
        value = getattr(counters, name, 0)
        if value:
            counts[name] = value
    for name, value in counters.extra.items():
        if value:
            counts[name] = counts.get(name, 0) + value
    return counts


@dataclass
class ServerConfig:
    """Tunables for one :class:`RendezvousServer`."""

    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral (read .port after start)
    max_frame: int = framing.DEFAULT_MAX_FRAME
    room_fill_timeout: float = 30.0   # waiting for m members
    handshake_timeout: float = 60.0   # active room must complete
    idle_timeout: float = 60.0        # per-connection silent-read limit
    send_queue_limit: int = 64        # frames buffered per connection
    drain_timeout: float = 5.0        # shutdown grace for active rooms
    max_room_size: int = 64
    #: Admission ceiling over *open* (filling + active) rooms.  A HELLO
    #: that would open a room beyond the ceiling is shed with a typed
    #: BUSY frame — a transient, retryable condition the client answers
    #: with backoff (and a cluster router answers with re-placement).
    #: ``None`` disables shedding.  Joining an already-filling room is
    #: always admitted: the room charged its slot when it opened.
    max_rooms: Optional[int] = None
    #: Move frame codec work (fan-out encodes, large-frame decodes) onto
    #: the accel bridge threads so the event loop stays responsive while
    #: relaying Phase III payloads.  Counting is unchanged: frames are
    #: still counted on the loop, per recipient, under the room scope.
    offload: bool = False
    offload_threshold: int = 4096  # bridge-decode frames at least this big
    faults: Optional[FaultInjector] = None
    #: Deterministic token source for tests; production uses ``secrets``.
    token_rng: Optional[random.Random] = None


class _Connection:
    """One client socket: reader loop (the handler task) plus a writer
    task draining a bounded queue — the backpressure boundary."""

    _CLOSE = object()

    def __init__(self, conn_id: int, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, limit: int) -> None:
        self.conn_id = conn_id
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=limit)
        self.index: Optional[int] = None
        self.room: Optional["_Room"] = None
        self.done = False
        self.kicked = False
        self.writer_task: Optional[asyncio.Task] = None

    def start_writer(self) -> None:
        self.writer_task = asyncio.ensure_future(self._writer_loop())

    async def _writer_loop(self) -> None:
        try:
            while True:
                frame = await self.queue.get()
                if frame is self._CLOSE:
                    break
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            self._close_transport()

    def _close_transport(self) -> None:
        try:
            self.writer.close()
        except Exception:
            pass

    async def send(self, message) -> None:
        """Queue a control message; awaits when the bounded queue is full
        (backpressure propagates to the caller — the room relay)."""
        blob = protocol.encode_message(message)
        await self.send_frame(framing.encode_frame(blob))

    async def send_frame(self, frame: bytes) -> None:
        """Queue an already-encoded frame — the fan-out path encodes each
        relay once and hands the same bytes to every recipient."""
        metrics.count_message_sent(len(frame))
        await self.queue.put(frame)

    def send_best_effort(self, message) -> None:
        """Non-blocking send for abort/error paths: if the queue is full
        the peer is not reading — just close, EOF carries the signal."""
        try:
            blob = protocol.encode_message(message)
            self.queue.put_nowait(framing.encode_frame(blob))
        except asyncio.QueueFull:
            metrics.bump("svc:send-queue-drops")
            obslog.log_event(_log, "send-queue-drop", conn=self.conn_id,
                             frame=type(message).__name__)

    def close(self) -> None:
        """Ask the writer task to flush queued frames then close."""
        try:
            self.queue.put_nowait(self._CLOSE)
        except asyncio.QueueFull:
            if self.writer_task is not None:
                self.writer_task.cancel()
            self._close_transport()

    def kick(self) -> None:
        """Hard-disconnect (fault injection): drop without flushing."""
        self.kicked = True
        if self.writer_task is not None:
            self.writer_task.cancel()
        self._close_transport()


class _Room:
    """One rendezvous room: roster, FIFO relay, lifecycle state.

    Restored rooms (live migration, docs/PROTOCOL.md) pass through the
    extra ``RESTORING`` state: the relay state came from a peer shard's
    checkpoint, roster slots are ``None`` placeholders, and the room
    resumes — relay loop, deadlines, FIFO — once every non-DONE member
    has re-attached through the router's re-splice.
    """

    FILLING, ACTIVE, CLOSED, RESTORING = ("filling", "active", "closed",
                                          "restoring")

    def __init__(self, server: "RendezvousServer", name: str, m: int,
                 token: str, trace: Optional[str] = None,
                 restored: bool = False) -> None:
        self.server = server
        self.name = name
        self.m = m
        self.token = token
        self.trace = trace or ""
        self.state = self.FILLING
        self.members: List[Optional[_Connection]] = []
        self.done: set = set()
        self.outcome: Optional[str] = None   # "completed" | abort reason
        self.queue: asyncio.Queue = asyncio.Queue()
        self.relay_task: Optional[asyncio.Task] = None
        self.finished = asyncio.Event()
        self.opened_at = time.perf_counter()
        # Deadline bookkeeping lives on the room (not buried in closures)
        # so a checkpoint can ship the *remaining* budget and a restore
        # can re-arm it — a migrated room never gets a fresh clock.
        self.fill_timer: Optional[asyncio.TimerHandle] = None
        self.fill_deadline: Optional[float] = None
        self.relay_deadline: Optional[float] = None
        self.restore_timer: Optional[asyncio.TimerHandle] = None
        # Phase progress: fanned-out count and last payload kind — the
        # phase-barrier marker for passive checkpoints.
        self.relayed = 0
        self.phase_kind: Optional[str] = None
        # Migration state: which members the router has quiesced, and the
        # checkpointed lifecycle state a RESTORING room resumes into.
        self.quiesced: set = set()
        self.restore_state: Optional[str] = None
        self._ship_requested = False
        # Lifecycle spans (fill -> relay under one root); identified by
        # the unlinkable token only — never the rendezvous name.  The
        # root adopts the opening member's trace context, so the room's
        # server-side spans join the client's trace across the wire —
        # and a restored room adopts the *checkpointed* context, keeping
        # one trace across the migration hop.
        self._span_root = obs.start_span("room", parent=None, trace=trace,
                                         token=token, m=m)
        self._span_stage = obs.start_span(
            "room:restore" if restored else "room:fill",
            parent=self._span_root, token=token)

    @property
    def scope(self) -> str:
        return f"room:{self.token}"

    # Filling --------------------------------------------------------------

    def add(self, conn: _Connection) -> int:
        index = len(self.members)
        self.members.append(conn)
        conn.index = index
        conn.room = self
        return index

    def cancel_fill_timer(self) -> None:
        """Cancel the fill deadline; a queued-but-unfired callback is
        suppressed too (TimerHandle.cancel covers the same-tick race)."""
        if self.fill_timer is not None:
            self.fill_timer.cancel()
            self.fill_timer = None

    def activate(self) -> None:
        self.cancel_fill_timer()
        self.state = self.ACTIVE
        metrics.bump("svc:rooms-active")
        self._span_stage.end()
        self._span_stage = obs.start_span("room:relay",
                                          parent=self._span_root,
                                          token=self.token)
        obslog.log_event(_log, "room-active", token=self.token, m=self.m,
                         fill_s=round(time.perf_counter() - self.opened_at, 6))
        self.relay_deadline = (asyncio.get_running_loop().time()
                               + self.server.config.handshake_timeout)
        for conn in self.members:
            conn.send_best_effort(
                protocol.RoomReady(room=self.name, token=self.token, m=self.m))
        self.relay_task = asyncio.ensure_future(self._relay_loop())
        # Fill is a phase boundary: ship a passive checkpoint (cluster
        # shards only — standalone relays have nowhere to ship it).
        if self.server.on_checkpoint is not None:
            self.server._emit_checkpoint(self._build_checkpoint([]),
                                         final=False)

    # Relay ----------------------------------------------------------------

    async def relay(self, sender_index: int, payload: object) -> None:
        await self.queue.put((sender_index, payload, time.perf_counter()))

    async def _relay_loop(self) -> None:
        loop = asyncio.get_running_loop()
        if self.relay_deadline is None:
            self.relay_deadline = (loop.time()
                                   + self.server.config.handshake_timeout)
        with metrics.scope(self.scope):
            while self.state == self.ACTIVE:
                remaining = self.relay_deadline - loop.time()
                if remaining <= 0:
                    metrics.bump("svc:handshake-timeouts")
                    self.abort("handshake-timeout")
                    return
                try:
                    item = await asyncio.wait_for(self.queue.get(), remaining)
                    if item is _QUIESCE:
                        # Every frame enqueued before the sentinel has been
                        # fully fanned out — the exact point to snapshot.
                        self._ship()
                        return
                    sender, payload, enqueued = item
                    kind = protocol.payload_kind(payload)
                    if (self.phase_kind is not None
                            and kind != self.phase_kind
                            and self.server.on_checkpoint is not None):
                        # Phase barrier: the FIFO advanced to a new payload
                        # kind.  Snapshot *before* fanning the new phase
                        # out, with the in-hand frame back at the head of
                        # the pending queue.
                        pending = [(sender, payload)]
                        pending.extend((s, p) for s, p, _ in
                                       list(self.queue._queue))
                        self.server._emit_checkpoint(
                            self._build_checkpoint(pending), final=False)
                    self.phase_kind = kind
                    await asyncio.wait_for(
                        self._fan_out(sender, payload),
                        self.relay_deadline - loop.time())
                    self.relayed += 1
                    # Queue-to-fanned-out latency of one relayed frame:
                    # the relay's own contribution to handshake latency
                    # (includes injected fault delays — honestly).
                    metrics.observe("svc:relay-latency",
                                    time.perf_counter() - enqueued)
                except asyncio.TimeoutError:
                    metrics.bump("svc:handshake-timeouts")
                    self.abort("handshake-timeout")
                    return
                except asyncio.CancelledError:
                    return

    async def _fan_out(self, sender: int, payload: object) -> None:
        faults = self.server.config.faults
        action = faults.action_for(sender, payload) if faults else None
        if action is not None and action.delay:
            await asyncio.sleep(action.delay)
        copies = 1 if action is None else action.copies
        if action is not None and action.disconnect_sender:
            metrics.bump("room-disconnects")
            victim = self.members[sender]
            if victim is None:
                return
            victim.kick()
            # The victim's handler will observe the closed socket and
            # report the loss; abort proactively so survivors never wait
            # on the handshake timeout.
            self.abort("peer-disconnect")
            return
        if copies == 0:
            metrics.bump("room-drops")
            return
        message = protocol.Deliver(payload=payload)
        if self.server.config.offload:
            frame = await accel_bridge.run(_encode_deliver, message,
                                           scope=self.scope)
        else:
            frame = _encode_deliver(message)
        for _ in range(copies):
            for conn in self.members:
                if conn is None or conn.index == sender or conn.kicked:
                    continue
                await conn.send_frame(frame)
            metrics.bump("room-relays")
        if copies > 1:
            metrics.bump("room-duplicates")

    # Lifecycle ------------------------------------------------------------

    def mark_done(self, conn: _Connection) -> None:
        conn.done = True
        self.done.add(conn.index)
        if self.state == self.ACTIVE and len(self.done) == self.m:
            self._complete()

    def _complete(self) -> None:
        self._finish("completed")
        metrics.bump("svc:rooms-completed")
        metrics.observe("svc:room-lifetime",
                        time.perf_counter() - self.opened_at)
        for member in self.members:
            if member is not None:
                member.close()

    def member_lost(self, conn: _Connection) -> None:
        """A member's connection dropped.  During fill: abort (indices are
        roster positions, they cannot be reassigned).  Active: abort unless
        the member had already concluded."""
        if self.state == self.CLOSED or conn.done:
            return
        in_handshake = (self.state == self.ACTIVE
                        or self.restore_state == gate_checkpoint.ACTIVE)
        self.abort("peer-disconnect" if in_handshake
                   else "peer-left-while-filling")

    def abort(self, reason: str) -> None:
        if self.state == self.CLOSED:
            return
        self._finish(reason)
        metrics.bump("svc:rooms-aborted")
        metrics.bump(f"svc:abort:{reason}")
        for conn in self.members:
            if conn is None:
                continue
            if not conn.done and not conn.kicked:
                metrics.bump("svc:abort-frames")
                conn.send_best_effort(protocol.Abort(reason=reason))
            conn.close()

    def _finish(self, outcome: str) -> None:
        self.state = self.CLOSED
        self.outcome = outcome
        self.cancel_fill_timer()
        if self.restore_timer is not None:
            self.restore_timer.cancel()
            self.restore_timer = None
        self._span_stage.end()
        self._span_root.end(outcome=outcome)
        obslog.log_event(_log, "room-closed", token=self.token,
                         outcome=outcome, members=len(self.members),
                         lifetime_s=round(
                             time.perf_counter() - self.opened_at, 6))
        self.server._room_closed(self)
        if self.relay_task is not None and self.relay_task is not asyncio.current_task():
            self.relay_task.cancel()
        self.finished.set()

    # Migration: quiesce -> checkpoint -> ship -------------------------------

    def quiesce(self, conn: _Connection) -> None:
        """The router injected a QUIESCE sentinel on this member's
        connection: no further frames will arrive from them until the
        room moves.  Once every live member is quiesced, ship."""
        if self.state == self.CLOSED or conn.index is None:
            return
        self.quiesced.add(conn.index)
        self._maybe_ship()

    def _maybe_ship(self) -> None:
        if self.state == self.CLOSED or self._ship_requested:
            return
        live = [conn.index for conn in self.members
                if conn is not None and not conn.done and not conn.kicked]
        if not live or not all(index in self.quiesced for index in live):
            return
        self._ship_requested = True
        if self.state == self.ACTIVE:
            # Never snapshot mid-fan-out: let the relay loop finish
            # everything already enqueued, then ship at the sentinel.
            self.queue.put_nowait(_QUIESCE)
        else:
            self._ship()

    def _ship(self) -> None:
        """Snapshot the room into its final checkpoint and close it with
        outcome "migrated".  Runs at a FIFO boundary: every frame before
        this point has been fully fanned out."""
        if self.state == self.CLOSED:
            return
        pending: List = []
        while not self.queue.empty():
            item = self.queue.get_nowait()
            if item is not _QUIESCE:
                pending.append((item[0], item[1]))
        checkpoint = self._build_checkpoint(pending)
        metrics.bump("svc:rooms-migrated-out")
        self._finish("migrated")
        self.server._emit_checkpoint(checkpoint, final=True)
        for conn in self.members:
            if conn is not None:
                conn.close()

    def _build_checkpoint(self, pending) -> RoomCheckpoint:
        loop = asyncio.get_running_loop()
        active = (self.state == self.ACTIVE
                  or self.restore_state == gate_checkpoint.ACTIVE)
        fill_remaining = handshake_remaining = None
        if active:
            handshake_remaining = (
                max(self.relay_deadline - loop.time(), 0.0)
                if self.relay_deadline is not None
                else self.server.config.handshake_timeout)
        else:
            fill_remaining = (
                max(self.fill_deadline - loop.time(), 0.0)
                if self.fill_deadline is not None
                else self.server.config.room_fill_timeout)
        return RoomCheckpoint(
            name=self.name, token=self.token, m=self.m,
            state=gate_checkpoint.ACTIVE if active else gate_checkpoint.FILLING,
            members=len(self.members), trace=self.trace,
            done=tuple(sorted(self.done)), pending=tuple(pending),
            fill_remaining_s=fill_remaining,
            handshake_remaining_s=handshake_remaining,
            relayed=self.relayed, phase_kind=self.phase_kind,
            counters=_scope_counts(self.scope))

    # Migration: restore -> attach -> resume ---------------------------------

    def attach(self, conn: _Connection, index: int) -> None:
        """Bind a re-spliced connection to roster slot ``index`` of this
        restored room (router ATTACH, in place of HELLO)."""
        if self.state != self.RESTORING:
            raise ProtocolError("ATTACH to a room that is not restoring")
        if not 0 <= index < len(self.members):
            raise ProtocolError("ATTACH index outside restored roster")
        if self.members[index] is not None:
            raise ProtocolError("ATTACH to an occupied roster slot")
        self.members[index] = conn
        conn.index = index
        conn.room = self
        conn.done = index in self.done
        metrics.bump("svc:attaches")
        self._maybe_resume()

    def _maybe_resume(self) -> None:
        if self.state != self.RESTORING:
            return
        for index, conn in enumerate(self.members):
            if conn is None and index not in self.done:
                return   # a live member has not re-attached yet
        self._resume()

    def _resume(self) -> None:
        """Every live member re-attached: pick up exactly where the donor
        shard stopped — same token, same trace, same FIFO, same budget."""
        if self.restore_state == gate_checkpoint.FILLING:
            self.state = self.FILLING
            self._span_stage.end()
            self._span_stage = obs.start_span("room:fill",
                                              parent=self._span_root,
                                              token=self.token)
            obslog.log_event(_log, "room-resumed", token=self.token,
                             state=self.state, members=len(self.members))
            if len(self.members) == self.m:
                # Roster completed while we were still restoring (a new
                # member HELLOed between restore and the last attach).
                self.server._filling.pop(self.name, None)
                self.activate()
            return
        if self.restore_timer is not None:
            self.restore_timer.cancel()
            self.restore_timer = None
        self.state = self.ACTIVE
        self._span_stage.end()
        self._span_stage = obs.start_span("room:relay",
                                          parent=self._span_root,
                                          token=self.token)
        obslog.log_event(_log, "room-resumed", token=self.token,
                         state=self.state, relayed=self.relayed,
                         pending=self.queue.qsize())
        if len(self.done) == self.m:
            # Every member had concluded before the move; close out.
            self._complete()
            return
        self.relay_task = asyncio.ensure_future(self._relay_loop())

    def _restore_timeout(self) -> None:
        """Backstop for a restored active room whose members never all
        re-attach: the checkpointed handshake budget still applies."""
        if self.state == self.RESTORING:
            metrics.bump("svc:handshake-timeouts")
            self.abort("handshake-timeout")


def _encode_deliver(message) -> bytes:
    """Encode one DELIVER to a ready-to-send frame (bridge-friendly:
    pure CPU, no loop state)."""
    return framing.encode_frame(protocol.encode_message(message))


class RendezvousServer:
    """The rendezvous service: accept loop + room registry.

    Usage::

        server = RendezvousServer(ServerConfig(port=0))
        await server.start()
        ... clients connect to server.port ...
        await server.shutdown()

    Also usable as an async context manager.
    """

    def __init__(self, config: Optional[ServerConfig] = None) -> None:
        self.config = config or ServerConfig()
        self._server: Optional[asyncio.AbstractServer] = None
        self._filling: Dict[str, _Room] = {}
        self._rooms: Dict[str, _Room] = {}     # token -> room (all states)
        self._handlers: set = set()
        self._connections: set = set()         # live _Connection objects
        self._conn_ids = itertools.count(1)
        self._accepting = False
        self._started = 0.0
        self._open_rooms = 0           # filling + active (admission control)
        #: Cluster hook (set by the shard worker): called with
        #: ``(checkpoint_payload, final)`` for every room checkpoint so it
        #: can travel up the supervision pipe.  ``None`` (standalone
        #: relays) disables passive checkpointing entirely.
        self.on_checkpoint = None

    # Lifecycle ------------------------------------------------------------

    async def start(self) -> "RendezvousServer":
        self._server = await asyncio.start_server(
            self._handle, self.config.host, self.config.port)
        self._accepting = True
        self._started = time.perf_counter()
        obslog.log_event(_log, "server-start", port=self.port)
        return self

    async def __aenter__(self) -> "RendezvousServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting; drain active rooms, then abort stragglers."""
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for room in list(self._filling.values()):
            room.abort("server-shutdown")
        active = [r for r in self._rooms.values() if r.state == _Room.ACTIVE]
        if drain and active:
            waits = [r.finished.wait() for r in active]
            try:
                await asyncio.wait_for(asyncio.gather(*waits),
                                       self.config.drain_timeout)
            except asyncio.TimeoutError:
                pass
        for room in list(self._rooms.values()):
            if room.state != _Room.CLOSED:
                room.abort("server-shutdown")
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)

    # Introspection --------------------------------------------------------

    def room_outcomes(self) -> Dict[str, str]:
        """token -> "completed" / abort reason, for closed rooms."""
        return {t: r.outcome for t, r in self._rooms.items()
                if r.outcome is not None}

    def status(self) -> Dict[str, object]:
        """Live telemetry snapshot — what a STATUS query returns.

        Aggregates only (the anonymity rule, docs/OBSERVABILITY.md):
        room counts by state keyed to random tokens' existence, queue
        depths, ``svc:*`` counters and histogram summaries.  No rendezvous
        names, member identifiers or payload bytes appear."""
        states = {_Room.FILLING: 0, _Room.ACTIVE: 0, _Room.CLOSED: 0,
                  _Room.RESTORING: 0}
        relay_backlog = 0
        for room in self._rooms.values():
            states[room.state] += 1
            if room.state in (_Room.ACTIVE, _Room.RESTORING):
                relay_backlog += room.queue.qsize()
        depths = [c.queue.qsize() for c in self._connections]
        outcomes: Dict[str, int] = {}
        for outcome in self.room_outcomes().values():
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        rec = metrics.current_recorder()
        counters = {name: value
                    for name, value in sorted(rec.total().extra.items())
                    if name.startswith(("svc:", "rev:"))}
        histograms = {name: hist.summary()
                      for name, hist in sorted(rec.histograms().items())}
        revocation_stats = revocation.stats()
        return {
            "uptime_s": round(time.perf_counter() - self._started, 3)
                        if self._started else 0.0,
            "accepting": self._accepting,
            "connections": len(self._connections),
            "rooms": {"filling": states[_Room.FILLING],
                      "active": states[_Room.ACTIVE],
                      "closed": states[_Room.CLOSED],
                      "restoring": states[_Room.RESTORING]},
            "admission": {"open_rooms": self._open_rooms,
                          "max_rooms": self.config.max_rooms},
            "outcomes": outcomes,
            "send_queues": {"total_depth": sum(depths),
                            "max_depth": max(depths, default=0)},
            "relay_backlog": relay_backlog,
            "counters": counters,
            "histograms": histograms,
            "accel": accel.stats(),
            # Omitted entirely when no revocation service runs in-process
            # (the common case for a pure relay).
            **({"revocation": revocation_stats}
               if revocation_stats["services"] else {}),
        }

    # Accept path ----------------------------------------------------------

    def _new_token(self) -> str:
        # Random and independent of the rendezvous name: logs, metric
        # scopes and on-wire ROOM_READY frames cannot be linked back to
        # the (possibly meaningful) name clients agreed on out of band.
        if self.config.token_rng is not None:
            return f"{self.config.token_rng.getrandbits(64):016x}"
        return secrets.token_hex(8)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn = _Connection(next(self._conn_ids), reader, writer,
                           self.config.send_queue_limit)
        self._handlers.add(asyncio.current_task())
        self._connections.add(conn)
        metrics.bump("svc:accepts")
        obslog.log_event(_log, "accept", conn=conn.conn_id)
        conn.start_writer()
        try:
            await self._session(conn)
        except (EncodingError, ProtocolError) as exc:
            metrics.bump("svc:protocol-errors")
            metrics.bump("svc:error-frames")
            # Only the error *class* is logged: ProtocolError messages can
            # quote the client-chosen rendezvous name, which must not
            # appear in telemetry (the wire Error frame still carries it —
            # that goes to the offending client only).
            obslog.log_event(_log, "protocol-error", conn=conn.conn_id,
                             error=type(exc).__name__)
            conn.send_best_effort(protocol.Error(reason=str(exc)))
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            metrics.bump("svc:connection-lost")
            obslog.log_event(_log, "connection-lost", conn=conn.conn_id)
        except asyncio.TimeoutError:
            metrics.bump("svc:idle-timeouts")
            metrics.bump("svc:error-frames")
            obslog.log_event(_log, "idle-timeout", conn=conn.conn_id)
            conn.send_best_effort(protocol.Error(reason="idle timeout"))
        except asyncio.CancelledError:
            pass
        finally:
            if conn.room is not None:
                conn.room.member_lost(conn)
            conn.close()
            self._connections.discard(conn)
            task = asyncio.current_task()
            if task in self._handlers:
                self._handlers.discard(task)

    async def _read_message(self, conn: _Connection):
        blob = await asyncio.wait_for(
            framing.read_frame(conn.reader, self.config.max_frame),
            self.config.idle_timeout)
        if blob is None:
            return None
        metrics.count_message_received(len(blob) + framing.HEADER_SIZE)
        if (self.config.offload
                and len(blob) >= self.config.offload_threshold):
            return await accel_bridge.run(protocol.decode_message, blob)
        return protocol.decode_message(blob)

    async def _session(self, conn: _Connection) -> None:
        hello = await self._read_message(conn)
        if hello is None:
            return
        if isinstance(hello, protocol.Status):
            # One-shot introspection query in place of HELLO.
            metrics.bump("svc:status-queries")
            await conn.send(protocol.StatusReply(body=json.dumps(
                self.status(), sort_keys=True)))
            return
        if isinstance(hello, protocol.Attach):
            # Router re-splice after a live migration: bind this fresh
            # connection to its old roster slot in the restored room.
            room = self._rooms.get(hello.token)
            if room is None:
                raise ProtocolError("ATTACH to an unknown room token")
            room.attach(conn, hello.index)   # validates state and slot
            await self._member_loop(conn, room)
            return
        if not isinstance(hello, protocol.Hello):
            raise ProtocolError(f"expected HELLO, got {type(hello).__name__}")
        if not 2 <= hello.m <= self.config.max_room_size:
            raise ProtocolError(
                f"room size {hello.m} outside [2, {self.config.max_room_size}]")
        if not self._accepting:
            # Draining is transient, not a protocol violation: shed with a
            # retryable BUSY so the client backs off (and, behind a cluster
            # router, gets re-placed onto a live shard).
            metrics.bump("svc:busy-sheds")
            metrics.bump("svc:busy:draining")
            obslog.log_event(_log, "busy-shed", conn=conn.conn_id,
                             busy_reason="draining")
            await conn.send(protocol.Busy(reason="draining"))
            return
        room = self._filling.get(hello.room)
        if room is None:
            if (self.config.max_rooms is not None
                    and self._open_rooms >= self.config.max_rooms):
                metrics.bump("svc:busy-sheds")
                metrics.bump("svc:busy:at-capacity")
                obslog.log_event(_log, "busy-shed", conn=conn.conn_id,
                                 busy_reason="at-capacity")
                await conn.send(protocol.Busy(reason="at-capacity"))
                return
            # The opening member's trace context (if any) becomes the
            # room trace; later members' contexts are ignored — one room,
            # one trace.  Lenient: malformed contexts mean "no context".
            room = _Room(self, hello.room, hello.m, self._new_token(),
                         trace=obs.valid_trace(hello.trace))
            self._filling[hello.room] = room
            self._rooms[room.token] = room
            self._open_rooms += 1
            metrics.bump("svc:rooms-opened")
            loop = asyncio.get_running_loop()
            room.fill_deadline = loop.time() + self.config.room_fill_timeout
            room.fill_timer = loop.call_later(
                self.config.room_fill_timeout, self._fill_timeout, room)
        elif room.m != hello.m:
            raise ProtocolError(
                f"room {hello.room!r} expects m={room.m}, not {hello.m}")
        index = room.add(conn)
        full = len(room.members) == room.m
        if full:
            # The m-th member has landed: kill the fill timer *before* the
            # first await below.  A timer callback already queued for this
            # very tick would otherwise fire in the WELCOME-send window and
            # abort a room that did fill in time (cancel() suppresses it).
            room.cancel_fill_timer()
            del self._filling[room.name]
        await conn.send(protocol.Welcome(room=room.name, index=index, m=room.m))
        if full:
            if room.state == _Room.FILLING:
                room.activate()
            # else: the roster of a restored FILLING room completed while
            # members were still re-attaching; _resume() activates it.
        await self._member_loop(conn, room)

    async def _member_loop(self, conn: _Connection, room: _Room) -> None:
        # Main read loop: relay broadcasts until the client signals DONE
        # and closes, or the room dies under us (closed socket -> except).
        while True:
            message = await self._read_message(conn)
            if message is None:
                return
            if isinstance(message, protocol.Broadcast):
                # RESTORING rooms buffer broadcasts in the FIFO; the relay
                # loop fans them out (in order) once the room resumes.
                if room.state not in (_Room.ACTIVE, _Room.RESTORING):
                    raise ProtocolError("broadcast outside an active room")
                await room.relay(conn.index, message.payload)
            elif isinstance(message, protocol.Done):
                room.mark_done(conn)
            elif isinstance(message, protocol.Quiesce):
                room.quiesce(conn)
            elif isinstance(message, protocol.Hello):
                raise ProtocolError("duplicate HELLO")
            else:
                raise ProtocolError(
                    f"unexpected {type(message).__name__} from client")

    def _fill_timeout(self, room: _Room) -> None:
        if room.state == _Room.FILLING or (
                room.state == _Room.RESTORING
                and room.restore_state == gate_checkpoint.FILLING):
            metrics.bump("svc:fill-timeouts")
            room.abort("fill-timeout")

    def _room_closed(self, room: _Room) -> None:
        self._filling.pop(room.name, None)
        self._open_rooms = max(0, self._open_rooms - 1)

    # Checkpoint / restore ---------------------------------------------------

    def _emit_checkpoint(self, checkpoint: RoomCheckpoint,
                         final: bool) -> None:
        metrics.bump("svc:checkpoints")
        if final:
            metrics.bump("svc:checkpoints-final")
        hook = self.on_checkpoint
        if hook is not None:
            hook(checkpoint.to_payload(), final)

    def restore_room(self, payload: object) -> Dict[str, object]:
        """Restore a room from a peer shard's final checkpoint.

        Validates the versioned payload (:class:`ProtocolError` on
        anything this node does not speak — see repro.gate.checkpoint),
        rebuilds the room in ``RESTORING`` state with placeholder roster
        slots, replays the donor's room-scope counter book so cluster
        aggregates survive the donor's death, re-enqueues the pending
        FIFO in order, and re-arms the *remaining* deadline budget.  The
        room resumes when the router has ATTACHed every live member.
        """
        checkpoint = RoomCheckpoint.from_payload(payload)
        if checkpoint.token in self._rooms:
            raise ProtocolError("restore collides with an existing token")
        if (checkpoint.state == gate_checkpoint.FILLING
                and checkpoint.name in self._filling):
            raise ProtocolError("restore collides with a filling room")
        room = _Room(self, checkpoint.name, checkpoint.m, checkpoint.token,
                     trace=checkpoint.trace or None, restored=True)
        room.state = _Room.RESTORING
        room.restore_state = checkpoint.state
        room.members = [None] * checkpoint.members
        room.done = set(checkpoint.done)
        room.relayed = checkpoint.relayed
        room.phase_kind = checkpoint.phase_kind
        for sender, item in checkpoint.pending:
            room.queue.put_nowait((sender, item, time.perf_counter()))
        self._rooms[checkpoint.token] = room
        self._open_rooms += 1
        with metrics.scope(room.scope):
            metrics.replay(checkpoint.counters)
        metrics.bump("svc:rooms-migrated-in")
        loop = asyncio.get_running_loop()
        if checkpoint.state == gate_checkpoint.FILLING:
            self._filling[checkpoint.name] = room
            remaining = checkpoint.fill_remaining_s
            if remaining is None:
                remaining = self.config.room_fill_timeout
            remaining = max(remaining, 0.05)
            room.fill_deadline = loop.time() + remaining
            room.fill_timer = loop.call_later(
                remaining, self._fill_timeout, room)
        else:
            remaining = checkpoint.handshake_remaining_s
            if remaining is None:
                remaining = self.config.handshake_timeout
            remaining = max(remaining, 0.05)
            room.relay_deadline = loop.time() + remaining
            room.restore_timer = loop.call_later(
                remaining, room._restore_timeout)
        obslog.log_event(_log, "room-restored", token=checkpoint.token,
                         state=checkpoint.state, members=checkpoint.members,
                         pending=len(checkpoint.pending))
        return {"token": checkpoint.token, "state": checkpoint.state,
                "members": checkpoint.members}
