"""Opt-in fault injection for the rendezvous relay.

The paper's channel gives guaranteed delivery; real networks do not.  A
:class:`FaultInjector` plugged into :class:`~repro.service.server.ServerConfig`
lets tests exercise the failure surface deterministically — the relay asks
it what to do with each broadcast before fanning it out:

* **delay** — sleep before relaying (slow-network / reordering pressure);
* **drop**  — swallow broadcasts of given handshake kinds ("dgka", "tag",
  "phase3"), optionally only from one victim index;
* **duplicate** — relay matching broadcasts twice (at-least-once fabrics);
* **disconnect-at-phase** — kill the victim's connection the moment it
  sends a broadcast of the given kind, *instead of* relaying it (a crash
  mid-protocol).

The degradation contract under any of these is: every surviving client
terminates with an explicit failed :class:`~repro.core.handshake.
HandshakeOutcome` (via room ABORT or the handshake timeout) — never a hang.
Each applied fault is recorded via :func:`repro.metrics.bump` under
``fault:<kind>`` so tests can assert injection actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from repro import metrics
from repro.service.protocol import payload_kind


@dataclass(frozen=True)
class FaultAction:
    """What the relay should do with one broadcast."""

    copies: int = 1          # 0 = drop, 2 = duplicate
    delay: float = 0.0       # seconds to sleep before fanning out
    disconnect_sender: bool = False


_PASS = FaultAction()


class FaultInjector:
    """Declarative fault plan consulted by the room relay loop.

    ``victim`` scopes drop/duplicate/disconnect to one participant index;
    ``None`` applies drop/duplicate to every sender (disconnect requires an
    explicit victim).  ``max_events`` caps how many faults fire in total —
    handy for "drop exactly the first tag" scenarios.
    """

    def __init__(self, *, delay: float = 0.0,
                 drop_kinds: Iterable[str] = (),
                 duplicate_kinds: Iterable[str] = (),
                 victim: Optional[int] = None,
                 disconnect_at: Optional[str] = None,
                 max_events: Optional[int] = None) -> None:
        self.delay = delay
        self.drop_kinds: FrozenSet[str] = frozenset(drop_kinds)
        self.duplicate_kinds: FrozenSet[str] = frozenset(duplicate_kinds)
        self.victim = victim
        self.disconnect_at = disconnect_at
        if disconnect_at is not None and victim is None:
            raise ValueError("disconnect_at requires an explicit victim index")
        self.max_events = max_events
        self.events = 0

    def _targets(self, sender: int) -> bool:
        return self.victim is None or sender == self.victim

    def _spent(self) -> bool:
        return self.max_events is not None and self.events >= self.max_events

    def action_for(self, sender: int, payload: object) -> FaultAction:
        """Decide the relay action for one broadcast from ``sender``."""
        if self._spent():
            return _PASS
        kind = payload_kind(payload)
        if (self.disconnect_at == kind and sender == self.victim):
            self.events += 1
            metrics.bump("fault:disconnect")
            return FaultAction(copies=0, delay=self.delay,
                               disconnect_sender=True)
        if kind in self.drop_kinds and self._targets(sender):
            self.events += 1
            metrics.bump("fault:drop")
            return FaultAction(copies=0, delay=self.delay)
        if kind in self.duplicate_kinds and self._targets(sender):
            self.events += 1
            metrics.bump("fault:duplicate")
            return FaultAction(copies=2, delay=self.delay)
        if self.delay:
            return FaultAction(copies=1, delay=self.delay)
        return _PASS
