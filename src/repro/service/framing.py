"""Length-prefixed framing for the rendezvous transport.

One frame is a 4-byte big-endian length header followed by exactly that
many payload bytes.  Payloads are :mod:`repro.core.wire` encodings, so an
on-wire observer sees precisely the paper's message format, merely
delimited into frames.  Protections:

* a header declaring more than ``max_frame`` bytes raises
  :class:`~repro.errors.FrameError` *before* any body byte is buffered —
  a malicious peer cannot make the server allocate unbounded memory;
* truncation (stream ends mid-header or mid-body) raises
  :class:`~repro.errors.FrameError`, never yields a partial frame;
* the core decoder (:class:`FrameDecoder`) is sans-IO, so property tests
  fuzz it byte-by-byte without sockets; the asyncio helpers wrap it.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional

from repro.errors import FrameError

#: Bytes of the big-endian unsigned length header.
HEADER_SIZE = 4

#: Default payload ceiling.  Handshake payloads (DGKA group elements,
#: MAC tags, theta/delta pairs) are a few KiB at the paper's parameter
#: sizes; 1 MiB leaves ample headroom without letting a peer balloon
#: server memory.
DEFAULT_MAX_FRAME = 1 << 20


def encode_frame(payload: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Wrap ``payload`` in a length-prefixed frame."""
    if len(payload) > max_frame:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds max {max_frame}")
    return len(payload).to_bytes(HEADER_SIZE, "big") + payload


class FrameDecoder:
    """Incremental (sans-IO) frame parser.

    Feed arbitrary byte chunks; complete frames come back in order.  The
    decoder validates the declared length against ``max_frame`` as soon as
    the header is complete, so oversized frames are rejected while at most
    ``HEADER_SIZE + max_frame`` bytes are ever buffered.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held waiting for a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return frames
            length = int.from_bytes(self._buffer[:HEADER_SIZE], "big")
            if length > self.max_frame:
                raise FrameError(
                    f"frame declares {length} bytes, max is {self.max_frame}")
            if len(self._buffer) < HEADER_SIZE + length:
                return frames
            frames.append(bytes(self._buffer[HEADER_SIZE:HEADER_SIZE + length]))
            del self._buffer[:HEADER_SIZE + length]

    def close(self) -> None:
        """Signal end-of-stream; raises if it cuts a frame short."""
        if self._buffer:
            raise FrameError(
                f"stream truncated with {len(self._buffer)} partial frame bytes")


async def read_frame(reader: asyncio.StreamReader,
                     max_frame: int = DEFAULT_MAX_FRAME) -> Optional[bytes]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`~repro.errors.FrameError` on truncation mid-frame or an
    oversized declared length (the caller should drop the connection)."""
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("stream truncated mid-header") from exc
    length = int.from_bytes(header, "big")
    if length > max_frame:
        raise FrameError(f"frame declares {length} bytes, max is {max_frame}")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"stream truncated mid-body ({len(exc.partial)}/{length} bytes)"
        ) from exc


async def write_frame(writer: asyncio.StreamWriter, payload: bytes,
                      max_frame: int = DEFAULT_MAX_FRAME) -> None:
    """Frame ``payload`` and flush it (awaits transport backpressure)."""
    writer.write(encode_frame(payload, max_frame))
    await writer.drain()
