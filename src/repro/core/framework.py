"""The GCD framework facade: the SHS operations of Fig. 1.

:class:`GcdFramework` binds one group authority with its enrolled members
and exposes the paper's interface:

* ``SHS.CreateGroup``   -> :meth:`GcdFramework.create` (classmethod)
* ``SHS.AdmitMember``   -> :meth:`admit_member`
* ``SHS.RemoveUser``    -> :meth:`remove_user`
* ``SHS.Update``        -> :meth:`update_all` (or per-member ``update()``)
* ``SHS.Handshake``     -> :func:`repro.core.handshake.run_handshake`
  (module-level, because a handshake may span *several* frameworks'
  members — that is the whole point of a secret handshake)
* ``SHS.TraceUser``     -> :meth:`trace`

For multi-group scenarios create one framework per group; all frameworks
share the system-wide DGKA parameters (the paper: "all groups use the same
group key agreement protocol with the same global parameters").
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.group_authority import CgkdFactory, GroupAuthority, _default_cgkd
from repro.core.handshake import HandshakeOutcome, HandshakePolicy, run_handshake
from repro.core.member import GcdMember
from repro.core.transcript import HandshakeTranscript, TraceResult
from repro.crypto.params import DHParams
from repro.errors import MembershipError


class GcdFramework:
    """One secret-handshake group: its GA plus member handles."""

    def __init__(self, authority: GroupAuthority) -> None:
        self.authority = authority
        self._members: Dict[str, GcdMember] = {}

    # SHS.CreateGroup ------------------------------------------------------------

    @classmethod
    def create(
        cls,
        group_id: str,
        gsig_kind: str = "acjt",
        gsig_profile: str = "tiny",
        cgkd_factory: CgkdFactory = _default_cgkd,
        tracing_group: Optional[DHParams] = None,
        rng: Optional[random.Random] = None,
    ) -> "GcdFramework":
        """SHS.CreateGroup: establish the group's cryptographic context."""
        authority = GroupAuthority(
            group_id,
            gsig_kind=gsig_kind,
            gsig_profile=gsig_profile,
            cgkd_factory=cgkd_factory,
            tracing_group=tracing_group,
            rng=rng,
        )
        return cls(authority)

    # SHS.AdmitMember -------------------------------------------------------------

    def admit_member(self, user_id: str,
                     rng: Optional[random.Random] = None) -> GcdMember:
        """SHS.AdmitMember: enrol a user, then bring *everyone* (including
        the newcomer) up to date from the bulletin board."""
        if user_id in self._members:
            raise MembershipError(f"{user_id} already admitted")
        package = self.authority.admit_member(user_id, rng)
        member = GcdMember(package, self.authority.board)
        self._members[user_id] = member
        self.update_all()
        return member

    # SHS.RemoveUser ----------------------------------------------------------------

    def remove_user(self, user_id: str) -> None:
        """SHS.RemoveUser: revoke and propagate state to remaining members."""
        if user_id not in self._members:
            raise MembershipError(f"unknown member {user_id}")
        self.authority.remove_user(user_id)
        self.update_all()

    def remove_users(self, user_ids: Sequence[str]) -> None:
        """Batched SHS.RemoveUser: one revocation epoch for the whole
        batch (one CGKD rekey + one accumulator trapdoor exponentiation),
        then propagate to the remaining members."""
        for user_id in user_ids:
            if user_id not in self._members:
                raise MembershipError(f"unknown member {user_id}")
        self.authority.remove_users(user_ids)
        self.update_all()

    # SHS.Update ---------------------------------------------------------------------

    def update_all(self) -> None:
        """Run SHS.Update for every enrolled member handle."""
        for member in self._members.values():
            member.update()

    # Accessors ----------------------------------------------------------------------

    def member(self, user_id: str) -> GcdMember:
        try:
            return self._members[user_id]
        except KeyError:
            raise MembershipError(f"unknown member {user_id}") from None

    def members(self) -> List[GcdMember]:
        return [m for m in self._members.values() if not m.revoked]

    @property
    def group_id(self) -> str:
        return self.authority.group_id

    # SHS.Handshake (convenience for single-group sessions) ----------------------------

    def handshake(self, user_ids: Sequence[str],
                  policy: Optional[HandshakePolicy] = None,
                  rng: Optional[random.Random] = None) -> List[HandshakeOutcome]:
        """Run a handshake among this group's own members (tests/demos).

        Cross-group handshakes use :func:`repro.core.handshake.run_handshake`
        directly with members from several frameworks."""
        participants = [self.member(uid) for uid in user_ids]
        return run_handshake(participants, policy, rng)

    # SHS.TraceUser -------------------------------------------------------------------

    def trace(self, transcript: HandshakeTranscript,
              exhaustive: bool = False) -> TraceResult:
        """SHS.TraceUser on a handshake transcript."""
        return self.authority.trace_handshake(transcript, exhaustive=exhaustive)
