"""Helpers for analysing partially-successful handshakes (Section 7,
extension; footnote 2 of the paper).

When a mixed-group handshake runs with ``partial_success=True``, each
participant's :class:`~repro.core.handshake.HandshakeOutcome` reports its
confirmed subset.  These helpers turn the per-party views into the global
picture the paper's example describes (5 parties: 2 of group A and 3 of
group B should each discover their own subset)."""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set

from repro.core.handshake import HandshakeOutcome


def subsets(outcomes: Sequence[HandshakeOutcome]) -> List[FrozenSet[int]]:
    """The distinct subsets Delta participants discovered (each includes
    the discovering party itself)."""
    found: Set[FrozenSet[int]] = set()
    for outcome in outcomes:
        if outcome.confirmed_peers:
            found.add(frozenset(outcome.confirmed_peers | {outcome.index}))
    return sorted(found, key=lambda s: (min(s), len(s)))


def subsets_are_consistent(outcomes: Sequence[HandshakeOutcome]) -> bool:
    """True iff every member of every discovered subset discovered exactly
    the same subset (the 'both sides complete their handshakes' guarantee
    of the extension)."""
    view: Dict[int, FrozenSet[int]] = {}
    for outcome in outcomes:
        if outcome.confirmed_peers:
            view[outcome.index] = frozenset(
                outcome.confirmed_peers | {outcome.index}
            )
    for subset in subsets(outcomes):
        for index in subset:
            if view.get(index) != subset:
                return False
    return True


def partition_matches(outcomes: Sequence[HandshakeOutcome],
                      expected: Sequence[Set[int]]) -> bool:
    """Check the discovered subsets equal an expected partition, ignoring
    singleton groups (a lone party confirms nobody and discovers nothing)."""
    expected_sets = {frozenset(s) for s in expected if len(s) > 1}
    return set(subsets(outcomes)) == expected_sets
