"""GCD instantiation 2 (Section 8.2): self-distinction.

Building blocks:

* DGKA: Burmester-Desmedt [11] (as in scheme 1),
* CGKD: LKH key tree [33],
* GSIG: the modified Kiayias-Yung scheme of Appendix H — every handshake
  participant signs with the *same* hash-derived T7 (the "anonymity
  shield"), forcing distinct signers to reveal distinct T6 = T7^x' tags.

Theorem 3 properties: correctness, resistance to impersonation/detection,
**unlinkability** (not full — the underlying GSIG offers anonymity rather
than full-anonymity), indistinguishability to eavesdroppers, traceability,
no-misattribution, and **self-distinction**: a rogue member playing two
roles in one handshake produces two equal T6 tags and is caught.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cgkd.lkh import LkhController
from repro.core.framework import GcdFramework
from repro.core.handshake import HandshakePolicy


def create_scheme2(
    group_id: str,
    gsig_profile: str = "tiny",
    rng: Optional[random.Random] = None,
) -> GcdFramework:
    """Create a scheme-2 group (BD + LKH + modified KTY)."""
    return GcdFramework.create(
        group_id, gsig_kind="kty", gsig_profile=gsig_profile,
        cgkd_factory=lambda r: LkhController(4, r), rng=rng,
    )


def scheme2_policy(partial_success: bool = False,
                   traceable: bool = True) -> HandshakePolicy:
    """The handshake policy matching Theorem 3 (self-distinction on)."""
    return HandshakePolicy(
        traceable=traceable,
        partial_success=partial_success,
        self_distinction=True,
    )
