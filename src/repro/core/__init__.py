"""The paper's contribution: the GCD secret-handshake framework (Section 7)
and its two instantiations (Section 8).

Public entry points:

* :func:`repro.core.scheme1.create_scheme1` — instantiation 1
  (Burmester-Desmedt + LKH + ACJT; Theorem 1 properties).
* :func:`repro.core.scheme2.create_scheme2` — instantiation 2
  (self-distinction via the modified Kiayias-Yung scheme; Theorem 3).
* :class:`repro.core.framework.GcdFramework` — the generic compiler, for
  custom building-block combinations.
"""

from repro.core.framework import GcdFramework, HandshakePolicy  # noqa: F401
from repro.core.handshake import HandshakeOutcome, run_handshake  # noqa: F401
from repro.core.scheme1 import create_scheme1  # noqa: F401
from repro.core.scheme2 import create_scheme2  # noqa: F401
