"""The group authority (GA) of the GCD framework (Section 7).

The GA plays three roles at once:

* group manager of the GSIG component (admitting members, opening
  signatures),
* group controller of the CGKD component (rekeying on membership events),
* holder of the tracing key pair ``(pk_T, sk_T)`` of an IND-CCA2
  cryptosystem (Cramer-Shoup here), used by GCD.TraceUser.

State distribution follows GCD.AdmitMember / GCD.RemoveUser exactly: every
membership event produces a bulletin-board post containing the CGKD rekey
message in the clear and the GSIG state update *encrypted under the new
CGKD group key* — so a freshly revoked member, unable to complete
CGKD.Rekey, also cannot learn the new GSIG state, and the dual-revocation
property of Section 3 holds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import metrics
from repro.cgkd.base import GroupController, RekeyMessage, WelcomePackage
from repro.cgkd.lkh import LkhController
from repro.core import wire
from repro.core.transcript import HandshakeTranscript, TraceResult
from repro.crypto import symmetric
from repro.crypto.cramer_shoup import CramerShoup, CSCiphertext, CSPublicKey
from repro.crypto.params import DHParams, dh_group
from repro.errors import (
    DecryptionError,
    EncodingError,
    MembershipError,
    ParameterError,
    RevocationError,
    TracingError,
)
from repro.gsig import acjt, kty
from repro.gsig.base import StateUpdate
from repro.net.channels import BulletinBoard
from repro.obs import spans as obs


@dataclass(frozen=True)
class GroupPublicInfo:
    """The public cryptographic context of a group (SHS.CreateGroup output).

    Everything here is public; the CRL is *not* here (it is distributed to
    members only, inside encrypted state updates)."""

    group_id: str
    gsig_kind: str  # "acjt" | "kty"
    gsig_public_key: object
    tracing_public_key: CSPublicKey
    board_poster_public: int


@dataclass(frozen=True)
class MembershipPackage:
    """Private material handed to a newly admitted member."""

    user_id: str
    group_info: GroupPublicInfo
    gsig_credential: object
    cgkd_welcome: WelcomePackage
    board_cursor: int


CgkdFactory = Callable[[Optional[random.Random]], GroupController]


def _default_cgkd(rng: Optional[random.Random]) -> GroupController:
    return LkhController(4, rng)


class GroupAuthority:
    """GA for one group: GM + GC + tracer (GCD.CreateGroup)."""

    def __init__(
        self,
        group_id: str,
        gsig_kind: str = "acjt",
        gsig_profile: str = "tiny",
        cgkd_factory: CgkdFactory = _default_cgkd,
        tracing_group: Optional[DHParams] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        rng = rng if rng is not None else random.Random()
        self._rng = rng
        self.group_id = group_id
        self.gsig_kind = gsig_kind
        if gsig_kind == "acjt":
            self._gsig = acjt.AcjtManager(gsig_profile, rng)
        elif gsig_kind == "kty":
            self._gsig = kty.KtyManager(gsig_profile, rng)
        else:
            raise ParameterError(f"unknown gsig kind {gsig_kind!r}")
        self._cgkd = cgkd_factory(rng)
        tracing_group = tracing_group or dh_group(384)
        self._tracing_pk, self._tracing_sk = CramerShoup.keygen(tracing_group, rng)
        self.board = BulletinBoard()
        self._poster_public, self._poster_secret = self.board.make_poster_key(rng)
        self._crl: List[str] = []

    # Public context --------------------------------------------------------------

    def public_info(self) -> GroupPublicInfo:
        return GroupPublicInfo(
            group_id=self.group_id,
            gsig_kind=self.gsig_kind,
            gsig_public_key=self._gsig.public_key,
            tracing_public_key=self._tracing_pk,
            board_poster_public=self._poster_public,
        )

    @property
    def gsig_manager(self):
        return self._gsig

    @property
    def cgkd_controller(self) -> GroupController:
        return self._cgkd

    @property
    def crl(self) -> Tuple[str, ...]:
        return tuple(self._crl)

    def group_key(self) -> bytes:
        """The current CGKD group key (GA-side view; used by tests)."""
        return self._cgkd.group_key

    # Membership ------------------------------------------------------------------

    def admit_member(self, user_id: str,
                     rng: Optional[random.Random] = None) -> MembershipPackage:
        """GCD.AdmitMember, one-call form (both Join sides run locally).

        For the protocol-faithful interactive form — where the user keeps
        its membership secret away from the GA — use
        :meth:`admit_member_interactive` with a request produced by
        ``gsig.acjt.begin_join`` / ``gsig.kty.begin_join``.
        """
        rng = rng or self._rng
        if self.gsig_kind == "acjt":
            request, secret = acjt.begin_join(self._gsig.public_key, user_id, rng)
        else:
            request, secret = kty.begin_join(self._gsig.public_key, user_id, rng)
        response, cursor, welcome = self.admit_member_interactive(request)
        if self.gsig_kind == "acjt":
            credential = acjt.finish_join(self._gsig.public_key, user_id, secret, response)
        else:
            credential = kty.finish_join(self._gsig.public_key, user_id, secret, response)
        return MembershipPackage(
            user_id=user_id,
            group_info=self.public_info(),
            gsig_credential=credential,
            cgkd_welcome=welcome,
            board_cursor=cursor,
        )

    def admit_member_interactive(self, gsig_request):
        """GA side of GCD.AdmitMember: CGKD.Join + GSIG.Join + posted update.

        Returns ``(gsig_response, board_cursor, cgkd_welcome)``; the user
        finishes with the scheme's ``finish_join``.
        """
        user_id = gsig_request.user_id
        with obs.span("cgkd:rekey", op="join"):
            cgkd_welcome, rekey = self._cgkd.join(user_id)
        gsig_response, gsig_update = self._gsig.admit(gsig_request)
        self._post_update("join", rekey, gsig_update)
        return gsig_response, len(self.board), cgkd_welcome

    def remove_user(self, user_id: str) -> None:
        """GCD.RemoveUser: CGKD.Leave + GSIG.Revoke, update posted encrypted
        under the *new* group key so the leaver cannot read it."""
        if user_id in self._crl:
            # RevocationError subclasses MembershipError, matching what
            # gsig.acjt / gsig.kty raise for the same double-revoke —
            # callers catching MembershipError keep working.
            raise RevocationError(f"{user_id} already revoked")
        with obs.span("cgkd:rekey", op="revoke"):
            rekey = self._cgkd.leave(user_id)
        gsig_update = self._gsig.revoke(user_id)
        self._crl.append(user_id)
        self._post_update("revoke", rekey, gsig_update)

    def remove_users(self, user_ids: Sequence[str]) -> None:
        """Batched GCD.RemoveUser: one revocation epoch.

        One CGKD rekey (schemes that support it replace the union of the
        removed key paths once) plus one batched GSIG revocation — a
        single trapdoor exponentiation for the ACJT accumulator — instead
        of k full sequential rekeys.  The epoch update is posted encrypted
        under the new group key, so none of the leavers can read it; a
        CGKD fallback that emits several rekey messages posts the
        intermediate ones with an empty GSIG payload and attaches the
        epoch update to the last (members only reach the final group key
        after applying all of them)."""
        ids = list(user_ids)
        if not ids:
            return
        if len(set(ids)) != len(ids):
            raise RevocationError("duplicate user in revocation batch")
        for user_id in ids:
            if user_id in self._crl:
                raise RevocationError(f"{user_id} already revoked")
        with obs.span("cgkd:rekey", op="revoke-batch"):
            rekeys = self._cgkd.leave_many(ids)
        gsig_update = self._gsig.revoke_batch(ids)
        self._crl.extend(ids)
        metrics.bump("rev:epochs-sealed")
        metrics.bump("rev:revocations", len(ids))
        for rekey in rekeys[:-1]:
            self._post_update("epoch", rekey, None)
        self._post_update("epoch", rekeys[-1], gsig_update)

    def _post_update(self, kind: str, rekey: RekeyMessage,
                     gsig_update: Optional[StateUpdate]) -> None:
        if gsig_update is None:
            # Intermediate rekey of a multi-message batch: nothing to
            # deliver beyond the CGKD key material itself.
            encrypted = b""
        else:
            try:
                group_key = self._cgkd.group_key
            except MembershipError:
                # The group just became empty (last member revoked): nobody
                # is left to read the update — encrypt under a throwaway key.
                group_key = bytes(
                    self._rng.getrandbits(8) for _ in range(32)
                )
            encrypted = symmetric.encrypt(
                group_key,
                wire.state_update_to_bytes(gsig_update),
                self._rng,
            )
        payload = wire.dumps((
            kind,
            rekey.epoch,
            rekey.kind,
            tuple(rekey.deliveries),
            tuple(sorted(rekey.header.items())),
            encrypted,
        ))
        self.board.post(f"gcd/{self.group_id}", payload,
                        self._poster_public, self._poster_secret, self._rng)

    # Tracing (GCD.TraceUser) --------------------------------------------------------

    def trace_handshake(self, transcript: HandshakeTranscript,
                        exhaustive: bool = False) -> TraceResult:
        """Decrypt every delta to recover session keys, decrypt the thetas,
        open the group signatures (GCD.TraceUser).

        ``exhaustive=True`` reproduces the paper's worst case: the authority
        does not assume delta_i pairs with theta_i and searches all
        recovered keys for each theta.
        """
        keys: Dict[int, bytes] = {}
        for idx, entry in enumerate(transcript.entries):
            try:
                ct = CSCiphertext(*entry.delta)
                keys[idx] = CramerShoup.decrypt_bytes(self._tracing_sk, ct)
            except (DecryptionError, EncodingError, ParameterError, TypeError):
                continue  # Decoy or foreign-group delta.
        identified: Dict[int, Optional[str]] = {}
        for idx, entry in enumerate(transcript.entries):
            candidates = list(keys.values()) if exhaustive else (
                [keys[idx]] if idx in keys else []
            )
            identified[idx] = self._open_theta(entry, candidates, transcript)
        return TraceResult(
            group_id=self.group_id,
            participants={i: u for i, u in identified.items() if u is not None},
            unresolved=tuple(i for i, u in identified.items() if u is None),
        )

    def _open_theta(self, entry, candidate_keys: List[bytes],
                    transcript: HandshakeTranscript) -> Optional[str]:
        message = transcript.signed_message(entry)
        for key in candidate_keys:
            metrics.bump("trace-decrypt-attempts")
            try:
                blob = symmetric.decrypt(key, entry.theta)
                signature = wire.signature_from_bytes(blob)
            except (DecryptionError, EncodingError):
                continue
            user = self._gsig.open(message, signature)
            if user is not None:
                return user
        return None

    def decrypt_tracing(self, delta: Tuple[int, int, int, int]) -> bytes:
        """Decrypt one delta with sk_T (raises on decoys)."""
        try:
            return CramerShoup.decrypt_bytes(self._tracing_sk, CSCiphertext(*delta))
        except (DecryptionError, ParameterError) as exc:
            raise TracingError("delta does not decrypt under sk_T") from exc
