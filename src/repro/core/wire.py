"""Binary wire format for protocol objects.

A small self-describing codec for the value types protocols exchange
(ints of arbitrary size and sign, bytes, str, bool, None, nested tuples).
The format mirrors :mod:`repro.crypto.hashing`'s canonical encoding — every
value is tagged and length-prefixed — and adds a decoder, so group
signatures and state updates can be symmetrically encrypted as opaque byte
strings and recovered on the other side.

Signature (de)serialization for both GSIG schemes lives here too, keeping
the dataclasses in :mod:`repro.gsig` free of format concerns.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import EncodingError
from repro.gsig.acjt import AcjtSignature
from repro.gsig.base import StateUpdate
from repro.gsig.kty import KtySignature

_INT = b"\x01"
_BYTES = b"\x02"
_STR = b"\x03"
_NONE = b"\x04"
_BOOL = b"\x05"
_SEQ = b"\x06"


def dumps(value) -> bytes:
    """Serialize one value (possibly a nested tuple/list)."""
    if value is None:
        return _NONE + (0).to_bytes(4, "big")
    if isinstance(value, bool):
        return _BOOL + (1).to_bytes(4, "big") + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        sign = b"-" if value < 0 else b"+"
        magnitude = abs(value)
        payload = sign + magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        return _INT + len(payload).to_bytes(4, "big") + payload
    if isinstance(value, bytes):
        return _BYTES + len(value).to_bytes(4, "big") + value
    if isinstance(value, str):
        payload = value.encode("utf-8")
        return _STR + len(payload).to_bytes(4, "big") + payload
    if isinstance(value, (tuple, list)):
        inner = b"".join(dumps(v) for v in value)
        return _SEQ + len(inner).to_bytes(4, "big") + inner
    raise EncodingError(f"cannot serialize type {type(value).__name__}")


def loads(blob: bytes):
    """Inverse of :func:`dumps`; raises :class:`EncodingError` on junk."""
    value, offset = _decode(blob, 0)
    if offset != len(blob):
        raise EncodingError("trailing bytes after value")
    return value


def _decode(blob: bytes, offset: int) -> Tuple[object, int]:
    if offset + 5 > len(blob):
        raise EncodingError("truncated value header")
    tag = blob[offset:offset + 1]
    length = int.from_bytes(blob[offset + 1:offset + 5], "big")
    start = offset + 5
    end = start + length
    if end > len(blob):
        raise EncodingError("truncated value body")
    body = blob[start:end]
    if tag == _NONE:
        return None, end
    if tag == _BOOL:
        return body == b"\x01", end
    if tag == _INT:
        if len(body) < 2 or body[0:1] not in (b"+", b"-"):
            raise EncodingError("malformed int")
        magnitude = int.from_bytes(body[1:], "big")
        return -magnitude if body[0:1] == b"-" else magnitude, end
    if tag == _BYTES:
        return body, end
    if tag == _STR:
        return body.decode("utf-8"), end
    if tag == _SEQ:
        items = []
        inner = start
        while inner < end:
            item, inner = _decode(blob, inner)
            items.append(item)
        return tuple(items), end
    raise EncodingError(f"unknown tag {tag!r}")


# ---------------------------------------------------------------------------
# Signature codecs.
# ---------------------------------------------------------------------------

_ACJT_TAG = "gsig/acjt"
_KTY_TAG = "gsig/kty"

_ACJT_FIELDS = (
    "t1", "t2", "t3", "challenge", "s1", "s2", "s3", "s4",
    "c_e", "c_u", "c_r", "s_r1", "s_r2", "s_r3", "s_z", "s_w3", "acc_epoch",
)
_KTY_FIELDS = (
    "t1", "t2", "t3", "t4", "t5", "t6", "t7", "challenge",
    "s_e", "s_x", "s_xt", "s_z", "s_w", "s_k", "shielded",
)


def signature_to_bytes(signature) -> bytes:
    """Serialize an ACJT or KTY signature."""
    if isinstance(signature, AcjtSignature):
        return dumps((_ACJT_TAG,) + tuple(getattr(signature, f) for f in _ACJT_FIELDS))
    if isinstance(signature, KtySignature):
        return dumps((_KTY_TAG,) + tuple(getattr(signature, f) for f in _KTY_FIELDS))
    raise EncodingError(f"unknown signature type {type(signature).__name__}")


def signature_from_bytes(blob: bytes):
    """Deserialize a signature; raises :class:`EncodingError` on junk."""
    value = loads(blob)
    if not isinstance(value, tuple) or not value:
        raise EncodingError("not a signature blob")
    tag, *fields = value
    if tag == _ACJT_TAG:
        if len(fields) != len(_ACJT_FIELDS):
            raise EncodingError("ACJT signature arity mismatch")
        return AcjtSignature(**dict(zip(_ACJT_FIELDS, fields)))
    if tag == _KTY_TAG:
        if len(fields) != len(_KTY_FIELDS):
            raise EncodingError("KTY signature arity mismatch")
        return KtySignature(**dict(zip(_KTY_FIELDS, fields)))
    raise EncodingError(f"unknown signature tag {tag!r}")


# ---------------------------------------------------------------------------
# State-update codec (for encryption under the CGKD group key).
# ---------------------------------------------------------------------------


def state_update_to_bytes(update: StateUpdate) -> bytes:
    items = tuple(sorted(update.payload.items()))
    return dumps(("gsig/update", update.epoch, update.kind, items))


def state_update_from_bytes(blob: bytes) -> StateUpdate:
    value = loads(blob)
    if (
        not isinstance(value, tuple)
        or len(value) != 4
        or value[0] != "gsig/update"
    ):
        raise EncodingError("not a state-update blob")
    _, epoch, kind, items = value
    return StateUpdate(epoch=epoch, kind=kind, payload=dict(items))
