"""GCD instantiation 1 (Section 8.1).

Building blocks exactly as the paper picks them:

* DGKA: Burmester-Desmedt [11] (unauthenticated, two broadcast rounds),
* CGKD: LKH key tree [33] (with NNL [26] available as a drop-in),
* GSIG: ACJT [1] with dynamic-accumulator revocation [12].

Theorem 1 properties: correctness, resistance to impersonation/detection,
**full-unlinkability**, indistinguishability to eavesdroppers,
traceability, no-misattribution.  No self-distinction — that is what
scheme 2 adds.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cgkd.lkh import LkhController
from repro.cgkd.nnl import NnlController
from repro.core.framework import GcdFramework
from repro.core.handshake import HandshakePolicy
from repro.errors import ParameterError


def create_scheme1(
    group_id: str,
    gsig_profile: str = "tiny",
    cgkd: str = "lkh",
    nnl_capacity: int = 64,
    rng: Optional[random.Random] = None,
) -> GcdFramework:
    """Create a scheme-1 group (BD + LKH/NNL + ACJT)."""
    if cgkd == "lkh":
        factory = lambda r: LkhController(4, r)  # noqa: E731
    elif cgkd in ("sd", "cs"):
        factory = lambda r: NnlController(nnl_capacity, cgkd, r)  # noqa: E731
    else:
        raise ParameterError(f"unknown CGKD choice {cgkd!r}")
    return GcdFramework.create(
        group_id, gsig_kind="acjt", gsig_profile=gsig_profile,
        cgkd_factory=factory, rng=rng,
    )


def scheme1_policy(partial_success: bool = False,
                   traceable: bool = True) -> HandshakePolicy:
    """The handshake policy matching Theorem 1 (no self-distinction)."""
    return HandshakePolicy(
        traceable=traceable,
        partial_success=partial_success,
        self_distinction=False,
    )
