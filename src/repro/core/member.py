"""Member-side state of the GCD framework.

A :class:`GcdMember` bundles the user's GSIG credential and CGKD member
state, and implements GCD.Update: it polls the group's bulletin board,
runs CGKD.Rekey on each post, and — only if rekeying succeeded — decrypts
and applies the GSIG state update with the fresh group key (Section 7).

The member also provides the handshake-facing operations the three-phase
protocol needs (group key access, group-signing, peer-signature
verification) behind a scheme-agnostic surface, so the handshake engine in
:mod:`repro.core.handshake` never branches on the GSIG flavour.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cgkd.base import MemberState, RekeyMessage
from repro.cgkd.lkh import LkhMember
from repro.cgkd.nnl import NnlMember
from repro.cgkd.star import StarMember
from repro.core import wire
from repro.core.group_authority import GroupPublicInfo, MembershipPackage
from repro.crypto import symmetric
from repro.errors import DecryptionError, ParameterError, RevocationError
from repro.gsig import acjt, kty
from repro.obs import spans as obs


def _cgkd_member_for(welcome) -> MemberState:
    """Pick the member-state class matching the controller that produced
    the welcome package."""
    if "leaf" in welcome.extra and "method" in welcome.extra:
        return NnlMember(welcome)
    if "leaf" in welcome.extra:
        return LkhMember(welcome)
    return StarMember(welcome)


class GcdMember:
    """One enrolled user: credential + key state + update processing."""

    def __init__(self, package: MembershipPackage, board) -> None:
        self.user_id = package.user_id
        self.info: GroupPublicInfo = package.group_info
        self.credential = package.gsig_credential
        self.cgkd = _cgkd_member_for(package.cgkd_welcome)
        self._board = board
        self._cursor = package.board_cursor
        self.revoked = False

    # ------------------------------------------------------------------ state

    @property
    def group_id(self) -> str:
        return self.info.group_id

    @property
    def group_key(self) -> bytes:
        """The member's current CGKD group key k_i."""
        if self.revoked:
            raise RevocationError(f"{self.user_id} has been revoked")
        return self.cgkd.group_key

    def update(self) -> int:
        """GCD.Update: process all new bulletin-board posts.

        Returns the number of posts applied.  A post whose CGKD rekey this
        member cannot decrypt marks the member as revoked (it will also be
        unable to decrypt everything after)."""
        posts = self._board.read_since(self._cursor, f"gcd/{self.group_id}")
        applied = 0
        for post in posts:
            self._cursor = post.index + 1
            kind, epoch, rekey_kind, deliveries, header_items, encrypted = (
                wire.loads(post.payload)
            )
            rekey = RekeyMessage(
                epoch=epoch, kind=rekey_kind,
                deliveries=tuple(deliveries), header=dict(header_items),
            )
            with obs.span("cgkd:rekey", op="apply"):
                accepted = self.cgkd.rekey(rekey)
            if not accepted:
                self.revoked = True
                continue
            if not encrypted:
                # Intermediate rekey of a batched revocation epoch: only
                # CGKD key material; the GSIG delta rides the final post.
                applied += 1
                continue
            try:
                blob = symmetric.decrypt(self.cgkd.group_key, encrypted)
            except DecryptionError:
                self.revoked = True
                continue
            gsig_update = wire.state_update_from_bytes(blob)
            self.credential.apply_update(gsig_update)
            applied += 1
        if getattr(self.credential, "revoked", False):
            self.revoked = True
        return applied

    # --------------------------------------------------------------- handshake

    def gsig_sign(self, message: bytes, rng: Optional[random.Random] = None,
                  shield: Optional[int] = None) -> bytes:
        """Produce a serialized group signature on ``message``.

        ``shield`` activates the self-distinction mode (KTY only)."""
        with obs.span("gsig:sign"):
            if isinstance(self.credential, acjt.AcjtCredential):
                if shield is not None:
                    raise ParameterError(
                        "ACJT does not support shielded signing")
                signature = self.credential.sign(message, rng)
            elif isinstance(self.credential, kty.KtyCredential):
                signature = self.credential.sign(message, rng, shield=shield)
            else:
                raise ParameterError("unknown credential type")
            return wire.signature_to_bytes(signature)

    def gsig_view(self):
        """This member's verification view of the system state: the
        accumulator value (ACJT) or the CRL (KTY)."""
        if isinstance(self.credential, acjt.AcjtCredential):
            return acjt.AcjtMemberView(
                acc_value=self.credential.acc_value,
                acc_epoch=self.credential.acc_epoch,
            )
        if isinstance(self.credential, kty.KtyCredential):
            return self.credential.member_view()
        raise ParameterError("unknown credential type")

    def verification_context(self):
        """Hashable fingerprint of everything :meth:`gsig_verify`'s
        verdict depends on besides ``(message, blob, expected_shield)``.

        Two members with equal contexts return the same verdict for the
        same arguments, which is what lets the room-scale batch scan in
        :mod:`repro.accel.batch` verify each distinct signature once and
        share the answer."""
        pk = self.info.gsig_public_key
        return (type(self.credential).__name__, pk, self.gsig_view())

    def gsig_verify(self, message: bytes, blob: bytes,
                    expected_shield: Optional[int] = None) -> bool:
        """Verify a peer's serialized signature with this member's own view
        of the system state (the CRL / accumulator value travels inside
        encrypted updates, so only members can do this)."""
        with obs.span("gsig:verify"):
            try:
                signature = wire.signature_from_bytes(blob)
            except Exception:
                return False
            pk = self.info.gsig_public_key
            if isinstance(self.credential, acjt.AcjtCredential):
                if not isinstance(signature, acjt.AcjtSignature):
                    return False
                if expected_shield is not None:
                    return False
                return acjt.verify(pk, message, signature, self.gsig_view())
            if isinstance(self.credential, kty.KtyCredential):
                if not isinstance(signature, kty.KtySignature):
                    return False
                return kty.verify(pk, message, signature, self.gsig_view(),
                                  expected_shield=expected_shield)
            return False

    def distinction_shield(self, *context) -> int:
        """The common T7 base for a handshake session (KTY only)."""
        if not isinstance(self.credential, kty.KtyCredential):
            raise ParameterError("self-distinction requires the KTY scheme")
        return kty.common_shield(self.info.gsig_public_key, *context)

    @property
    def supports_self_distinction(self) -> bool:
        return isinstance(self.credential, kty.KtyCredential)
