"""Multi-group membership (paper Section 2: "all results can be easily
generalized to the case that users are allowed to join multiple groups").

A :class:`MembershipWallet` holds one :class:`~repro.core.member.GcdMember`
credential per group the user belongs to.  For a handshake the user picks
which affiliation to assert (``credential_for``); the wallet also offers
``probe`` — run one partial handshake per held credential against the same
peers to learn which (if any) affiliation it shares with them, without
revealing the ones it does not.

Important privacy note, mirrored from the paper's discussion: each probe
is an ordinary handshake, so a wallet holder learns only what any member
of that group would learn, and reveals only what the asserted group's
handshake reveals.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.handshake import HandshakeOutcome, HandshakePolicy, run_handshake
from repro.core.member import GcdMember
from repro.errors import MembershipError


class MembershipWallet:
    """One user's credentials across several groups."""

    def __init__(self, user_id: str) -> None:
        self.user_id = user_id
        self._memberships: Dict[str, GcdMember] = {}

    def enroll(self, framework, rng: Optional[random.Random] = None,
               alias: Optional[str] = None) -> GcdMember:
        """Join ``framework`` (SHS.AdmitMember) and keep the credential.

        ``alias`` — the identity used inside that group; defaults to the
        wallet's user id.  Distinct aliases per group keep the user's
        cross-group identity unlinkable even by colluding GAs."""
        member = framework.admit_member(alias or self.user_id, rng)
        if framework.group_id in self._memberships:
            raise MembershipError(
                f"{self.user_id} already enrolled in {framework.group_id}"
            )
        self._memberships[framework.group_id] = member
        return member

    def groups(self) -> List[str]:
        return sorted(self._memberships)

    def credential_for(self, group_id: str) -> GcdMember:
        try:
            return self._memberships[group_id]
        except KeyError:
            raise MembershipError(
                f"{self.user_id} holds no credential for {group_id}"
            ) from None

    def drop(self, group_id: str) -> None:
        """Forget a credential (e.g. after revocation)."""
        self._memberships.pop(group_id, None)

    def update_all(self) -> None:
        """Run SHS.Update for every held credential."""
        for member in self._memberships.values():
            member.update()

    def active_groups(self) -> List[str]:
        """Groups where this wallet's credential is still unrevoked."""
        return sorted(
            gid for gid, member in self._memberships.items()
            if not member.revoked
        )

    def probe(
        self,
        peers: Sequence[object],
        policy: Optional[HandshakePolicy] = None,
        rng: Optional[random.Random] = None,
        groups: Optional[Sequence[str]] = None,
    ) -> Dict[str, Tuple[HandshakeOutcome, List[HandshakeOutcome]]]:
        """Handshake the same peers once per held credential.

        Returns ``{group_id: (own_outcome, all_outcomes)}``.  With a
        partial-success policy this discovers, per affiliation, which
        peers share it."""
        policy = policy or HandshakePolicy(partial_success=True)
        results = {}
        for group_id in groups or self.groups():
            member = self._memberships[group_id]
            if member.revoked:
                continue
            outcomes = run_handshake([member] + list(peers), policy, rng)
            results[group_id] = (outcomes[0], outcomes)
        return results
