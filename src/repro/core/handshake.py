"""The three-phase GCD handshake protocol (Section 7 / Fig. 6).

Phase I  (Preparation): the m parties run DGKA.GroupKeyAgreement, yielding
  k*_i; each party computes k'_i = k*_i XOR k_i where k_i is its CGKD group
  key.  Parties of the same group end with equal k'; anyone else — and any
  MITM on the raw DGKA — ends with a different k'.

Phase II (Preliminary handshake): party i publishes MAC(k'_i, s_i, i) with
  s_i the digest of its own DGKA messages.  Each party learns exactly which
  peers share its k' (i.e. its group) without revealing anything to the
  others — a wrong-group observer sees MACs under keys it cannot test.

Phase III (Full handshake):
  CASE 1 (all tags valid): party i publishes (theta_i, delta_i) with
    delta_i = ENC(pk_T, k'_i)     (Cramer-Shoup, the tracing hook)
    theta_i = SENC(k'_i, sigma_i) (sigma_i a group signature on the
                                   session-bound message, optionally in
                                   self-distinction mode with common T7)
  CASE 2 (some tag invalid): party i publishes random decoys drawn from
    the ciphertext spaces, so outsiders cannot distinguish failure from
    success (indistinguishability to eavesdroppers).

The engine is a synchronous local driver: it owns the broadcast rounds,
attributes operation counts to per-party metric scopes, and supports a
``tamper`` hook on the DGKA rounds (the MITM experiments).  The
partially-successful extension (Section 7) is a policy switch: with
``partial_success=True``, parties with at least one same-group peer run
CASE 1 *within their subset* and each outcome reports the confirmed
subset, exactly as the paper's extension describes.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import metrics
from repro.accel import batch as accel_batch
from repro.accel import state as accel_state
from repro.obs import spans as obs
from repro.core import wire
from repro.core.transcript import HandshakeEntry, HandshakeTranscript, signed_message
from repro.crypto import hashing, mac, symmetric
from repro.crypto.cramer_shoup import CramerShoup
from repro.dgka.base import DgkaParty
from repro.dgka.burmester_desmedt import BurmesterDesmedtParty
from repro.errors import DecryptionError, ParameterError, ProtocolError
from repro.gsig import acjt, kty

DgkaFactory = Callable[[int, int, Optional[random.Random]], DgkaParty]


def default_dgka_factory(index: int, m: int,
                         rng: Optional[random.Random]) -> DgkaParty:
    return BurmesterDesmedtParty(index, m, rng=rng)


@dataclass(frozen=True)
class HandshakePolicy:
    """Selectable properties (Section 7 remark: the framework is tailorable
    to application semantics).

    * ``traceable=False`` runs only Phases I-II (no tracing transcript).
    * ``partial_success=True`` enables the partially-successful extension.
    * ``self_distinction=True`` imposes the common T7 (KTY members only).
    """

    traceable: bool = True
    partial_success: bool = False
    self_distinction: bool = False
    dgka_factory: DgkaFactory = default_dgka_factory


@dataclass
class HandshakeOutcome:
    """What one participant concludes from the handshake."""

    index: int
    success: bool
    #: For ``success=False`` outcomes from a networked transport: the
    #: failure was environmental (overload shed, lost transport, expired
    #: deadline) rather than a protocol verdict — a later attempt may
    #: succeed.  Always ``False`` for in-process engine outcomes.
    retryable: bool = False
    confirmed_peers: Set[int] = field(default_factory=set)
    session_key: Optional[bytes] = None
    transcript: Optional[HandshakeTranscript] = None
    distinct: Optional[bool] = None  # self-distinction verdict (scheme 2)
    duplicate_indices: Set[int] = field(default_factory=set)
    #: The participant's own k'_i (k* XOR k).  Part of the participant's
    #: secret session state — what an adversary obtains by corrupting a
    #: session participant (used by the unlinkability games).
    k_prime: Optional[bytes] = field(default=None, repr=False)

    @property
    def subset_size(self) -> int:
        """|Delta| for this participant (itself plus confirmed peers)."""
        return 1 + len(self.confirmed_peers)


def xor_keys(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        raise ParameterError("key length mismatch in XOR")
    return bytes(x ^ y for x, y in zip(a, b))


def _nominal_signature_length(member) -> int:
    """Length of a plausible signature blob for this member's scheme —
    the decoy theta must be drawn from (approximately) the right
    ciphertext space.  Built from a template with representative field
    magnitudes; real lengths vary by a few bytes (a size channel the
    paper's abstraction — and ours — ignores)."""
    cred = member.credential
    pk = member.info.gsig_public_key
    lengths = pk.lengths
    n_max = pk.n - 1
    c_max = (1 << lengths.k) - 1
    if isinstance(cred, acjt.AcjtCredential):
        eps, k, two_lp = lengths.epsilon, lengths.k, 2 * lengths.lp
        ln = pk.n.bit_length()
        template = acjt.AcjtSignature(
            t1=n_max, t2=n_max, t3=n_max, challenge=c_max,
            s1=-(1 << (eps * (lengths.gamma2 + k))),
            s2=-(1 << (eps * (lengths.lambda2 + k))),
            s3=-(1 << (eps * (lengths.gamma1 + two_lp + k + 1))),
            s4=-(1 << (eps * (two_lp + k))),
            c_e=n_max, c_u=n_max, c_r=n_max,
            s_r1=-(1 << (eps * (ln + k))),
            s_r2=-(1 << (eps * (ln + k))),
            s_r3=-(1 << (eps * (ln + k))),
            s_z=-(1 << (eps * (lengths.gamma1 + ln + k + 1))),
            s_w3=-(1 << (eps * (lengths.gamma1 + ln + k + 1))),
            acc_epoch=1,
        )
    else:
        eps, k, two_lp = lengths.epsilon, lengths.k, 2 * lengths.lp
        template = kty.KtySignature(
            t1=n_max, t2=n_max, t3=n_max, t4=n_max, t5=n_max, t6=n_max,
            t7=n_max, challenge=c_max,
            s_e=-(1 << (eps * (lengths.gamma2 + k))),
            s_x=-(1 << (eps * (lengths.lambda2 + k))),
            s_xt=-(1 << (eps * (lengths.lambda2 + k))),
            s_z=-(1 << (eps * (lengths.gamma1 + two_lp + k + 1))),
            s_w=-(1 << (eps * (two_lp + k))),
            s_k=-(1 << (eps * (two_lp + k))),
            shielded=False,
        )
    return len(wire.signature_to_bytes(template))


class _PartyRuntime:
    """Per-participant working state for one handshake session."""

    def __init__(self, index: int, member, dgka: DgkaParty,
                 rng: random.Random) -> None:
        self.index = index
        self.member = member
        self.dgka = dgka
        self.rng = rng
        self.k_prime: Optional[bytes] = None
        self.tag: Optional[bytes] = None
        self.valid_tags: Set[int] = set()
        self.published: Optional[Tuple[bytes, Tuple[int, int, int, int]]] = None
        self.is_decoy = False

    def scope(self) -> str:
        return f"hs:{self.index}"


def run_handshake(
    members: Sequence[object],
    policy: Optional[HandshakePolicy] = None,
    rng: Optional[random.Random] = None,
    tamper=None,
    *,
    rngs: Optional[Sequence[random.Random]] = None,
    pool=None,
) -> List[HandshakeOutcome]:
    """Execute SHS.Handshake among ``members`` (Fig. 1 / Fig. 6).

    ``members`` are :class:`repro.core.member.GcdMember` objects (or
    adversarial stand-ins duck-typing the same surface).  Returns one
    :class:`HandshakeOutcome` per participant, in order.

    ``rngs`` gives every party its own generator (``rngs[i]`` drives party
    ``i``), which decouples the parties' draw sequences; with the single
    shared ``rng`` the interleaved draw order serializes them.  ``pool``
    (a :class:`repro.accel.pool.WorkerPool`) computes the Phase III
    publish/verify crypto for all parties concurrently and therefore
    *requires* ``rngs`` — results, transcripts, and the guarded E1/E2
    counters are bit-identical to the inline path for the same ``rngs``.
    """
    policy = policy or HandshakePolicy()
    m = len(members)
    if m < 2:
        raise ProtocolError("a handshake needs at least two participants")
    if rngs is not None:
        if len(rngs) != m:
            raise ParameterError("need exactly one rng per participant")
        party_rngs = list(rngs)
    else:
        if pool is not None:
            raise ParameterError(
                "pool execution needs per-party rngs (rngs=...): a shared "
                "rng couples the parties' draw sequences, which only the "
                "serial inline order can reproduce"
            )
        shared = rng if rng is not None else random.Random()
        party_rngs = [shared] * m

    parties = [
        _PartyRuntime(i, member, policy.dgka_factory(i, m, party_rngs[i]),
                      party_rngs[i])
        for i, member in enumerate(members)
    ]

    started = time.perf_counter()
    try:
        with obs.span("handshake", m=m, transport="engine"):
            with metrics.scope("phase:I"), obs.span("phase:I"):
                _phase1_preparation(parties, tamper)
            with metrics.scope("phase:II"), obs.span("phase:II"):
                tags = _phase2_preliminary(parties)
                _phase2_validate(parties, tags)

            if not policy.traceable:
                return _outcomes_without_tracing(parties)

            with metrics.scope("phase:III"), obs.span("phase:III"):
                return _phase3_full(parties, policy, pool)
    finally:
        metrics.observe("hs:latency", time.perf_counter() - started)


# ---------------------------------------------------------------------------
# Phase I.
# ---------------------------------------------------------------------------


def _phase1_preparation(parties: List[_PartyRuntime], tamper) -> None:
    """Run the DGKA rounds synchronously, then derive k'_i."""
    rounds = parties[0].dgka.rounds
    m = len(parties)
    for round_no in range(rounds):
        payloads: Dict[int, object] = {}
        for party in parties:
            with metrics.scope(party.scope()), \
                    obs.span("dgka:emit", party=party.index, round=round_no):
                payload = party.dgka.emit(round_no)
                if payload is not None:
                    payloads[party.index] = payload
                    metrics.count_message_sent()
                    metrics.bump(f"hs-sent:{party.index}")
        for party in parties:
            delivered = {}
            for sender, payload in payloads.items():
                if tamper is not None:
                    payload = tamper(round_no, sender, party.index, payload)
                if payload is not None:
                    delivered[sender] = payload
            with metrics.scope(party.scope()), \
                    obs.span("dgka:absorb", party=party.index, round=round_no):
                for sender in delivered:
                    if sender != party.index:
                        metrics.count_message_received()
                party.dgka.absorb(round_no, delivered)
    for party in parties:
        with metrics.scope(party.scope()):
            if not party.dgka.acc:
                continue
            k_star = party.dgka.session_key
            group_key = _member_group_key(party.member, party.rng)
            party.k_prime = xor_keys(k_star, group_key)
    del m


def _member_group_key(member, rng: random.Random) -> bytes:
    """The member's CGKD key k_i; an outsider (no key) gets random bytes —
    it simply cannot produce matching MACs."""
    try:
        key = member.group_key
    except Exception:
        key = None
    if key is None:
        key = rng.getrandbits(256).to_bytes(32, "big")
    return key


# ---------------------------------------------------------------------------
# Phase II.
# ---------------------------------------------------------------------------


def _phase2_preliminary(parties: List[_PartyRuntime]) -> Dict[int, bytes]:
    """Each party publishes MAC(k'_i, s_i, i)."""
    tags: Dict[int, bytes] = {}
    for party in parties:
        with metrics.scope(party.scope()), \
                obs.span("tag:publish", party=party.index):
            if party.k_prime is None:
                continue
            s_i = party.dgka.unique_string(party.index)
            party.tag = mac.mac(party.k_prime, s_i, party.index)
            if party.tag is not None:
                tags[party.index] = party.tag
                metrics.count_message_sent()
                metrics.bump(f"hs-sent:{party.index}")
    return tags


def _phase2_validate(parties: List[_PartyRuntime], tags: Dict[int, bytes]) -> None:
    """Each party checks every tag under its own k'."""
    for party in parties:
        with metrics.scope(party.scope()), \
                obs.span("tag:verify", party=party.index):
            if party.k_prime is None:
                continue
            for j, tag in tags.items():
                if j != party.index:
                    metrics.count_message_received()
                s_j = party.dgka.unique_string(j)
                if mac.verify(party.k_prime, tag, s_j, j):
                    party.valid_tags.add(j)


# ---------------------------------------------------------------------------
# Phase III.
# ---------------------------------------------------------------------------


def _phase3_full(parties: List[_PartyRuntime], policy: HandshakePolicy,
                 pool=None) -> List[HandshakeOutcome]:
    m = len(parties)
    all_indices = set(range(m))

    def _case1(party: _PartyRuntime) -> bool:
        return party.k_prime is not None and (
            party.valid_tags == all_indices
            or (policy.partial_success and len(party.valid_tags) > 1)
        )

    # Pool mode: CASE 1 payloads (the expensive sign+encrypt path) are
    # computed concurrently, round-tripping each party's rng state so the
    # draw sequence matches inline execution draw for draw; the workers'
    # operation counts are replayed into each party's scope below.
    prebuilt: Dict[int, Tuple[bool, bytes, Tuple[int, int, int, int]]] = {}
    sids: Dict[int, bytes] = {}
    if pool is not None:
        jobs, job_parties = [], []
        for party in parties:
            if _case1(party):
                # dgka.sid hashes the transcript on every access; derive
                # it under the party's scope (where the inline publish
                # path charges it) and reuse the bytes below.
                with metrics.scope(party.scope()):
                    sids[party.index] = _session_sid(party)
                jobs.append((party.member, party.k_prime,
                             sids[party.index], policy.self_distinction,
                             party.rng.getstate()))
                job_parties.append(party)
        if jobs:
            results = pool.run_batch(
                _phase3_payload_task, jobs,
                scopes=[p.scope() for p in job_parties],
            )
            for party, (is_decoy, theta, delta, rng_state) in zip(
                    job_parties, results):
                party.rng.setstate(rng_state)
                prebuilt[party.index] = (is_decoy, theta, delta)

    # Decide, per party, whether to publish real values or decoys (CASE 1
    # vs CASE 2 of Fig. 6; the partial-success extension keeps CASE 1 for
    # any party with at least one confirmed same-group peer).
    publications: Dict[int, Tuple[bytes, Tuple[int, int, int, int]]] = {}
    for party in parties:
        with metrics.scope(party.scope()), \
                obs.span("phase3:publish", party=party.index):
            if party.index in prebuilt:
                is_decoy, theta, delta = prebuilt[party.index]
            elif _case1(party):
                is_decoy, theta, delta = _phase3_payload(
                    party.member, party.k_prime, _session_sid(party),
                    policy.self_distinction, party.rng,
                )
            else:
                theta, delta = _publish_decoy(party.member, party.rng)
                is_decoy = True
            publications[party.index] = (theta, delta)
            party.is_decoy = is_decoy
            metrics.count_message_sent()
            metrics.bump(f"hs-sent:{party.index}")

    entries = tuple(
        HandshakeEntry(index=i, theta=publications[i][0], delta=publications[i][1])
        for i in range(m)
    )

    # Pool mode: the verification scans (m-1 signature verifies per party)
    # also fan out.  The distinction shield is derived once, parent-side,
    # under the party's scope — exactly where the inline path charges it.
    # ``entries`` deliberately stays out of the job tuples: with batching
    # on, the chunked transport pickles the room once per worker instead
    # of once per party (O(m) instead of O(m^2) IPC bytes).
    scans: Dict[int, Tuple[Optional[int], Set[int], Dict[int, int]]] = {}
    if pool is not None:
        jobs, job_parties, shields = [], [], []
        for party in parties:
            if party.k_prime is None or party.is_decoy:
                continue
            sid = sids[party.index]
            with metrics.scope(party.scope()):
                shield = (party.member.distinction_shield(sid)
                          if policy.self_distinction else None)
            jobs.append((party.member, party.k_prime, sid,
                         set(party.valid_tags), party.index,
                         shield, policy.self_distinction))
            job_parties.append(party)
            shields.append(shield)
        if jobs:
            if accel_state.batch_enabled():
                results = _pooled_scan_chunked(pool, entries, jobs,
                                               job_parties)
            else:
                results = pool.run_batch(
                    _conclude_scan,
                    [job[:3] + (entries,) + job[3:] for job in jobs],
                    scopes=[p.scope() for p in job_parties],
                )
            for party, shield, (confirmed, tags_by_peer) in zip(
                    job_parties, shields, results):
                scans[party.index] = (shield, confirmed, tags_by_peer)

    # Inline mode: one room-wide ScanCache deduplicates the decrypt and
    # verify work across parties (each distinct signature is checked
    # once; every party's books still record the full scan via replay).
    scan_cache = (accel_batch.ScanCache()
                  if pool is None and accel_state.batch_enabled() else None)
    outcomes: List[HandshakeOutcome] = []
    for party in parties:
        with metrics.scope(party.scope()), \
                obs.span("phase3:conclude", party=party.index):
            outcomes.append(
                _conclude(party, entries, publications, policy, all_indices,
                          scans.get(party.index), cache=scan_cache)
            )
    return outcomes


def _session_sid(party: _PartyRuntime) -> bytes:
    return party.dgka.sid


def _publish_real(member, k_prime: bytes, sid: bytes, self_distinction: bool,
                  rng: random.Random) -> Tuple[bytes, Tuple[int, int, int, int]]:
    pk_t = member.info.tracing_public_key
    delta_ct = CramerShoup.encrypt_bytes(pk_t, k_prime, rng)
    delta = delta_ct.as_tuple()
    message = signed_message(sid, delta)
    shield = None
    if self_distinction:
        shield = member.distinction_shield(sid)
    blob = member.gsig_sign(message, rng, shield=shield)
    theta = symmetric.encrypt(k_prime, blob, rng)
    return theta, delta


def _publish_decoy(member,
                   rng: random.Random) -> Tuple[bytes, Tuple[int, int, int, int]]:
    """CASE 2: random elements of the two ciphertext spaces."""
    try:
        sig_len = _nominal_signature_length(member)
        pk_t = member.info.tracing_public_key
        delta = CramerShoup.random_ciphertext(pk_t, rng).as_tuple()
    except Exception:
        # A credential-less impostor fabricates something shaped right.
        sig_len = 512
        draw = lambda: rng.getrandbits(512)  # noqa: E731
        delta = (draw(), draw(), draw(), draw())
    theta = symmetric.random_ciphertext(sig_len, rng)
    return theta, delta


def _phase3_payload(member, k_prime: bytes, sid: bytes, self_distinction: bool,
                    rng: random.Random,
                    ) -> Tuple[bool, bytes, Tuple[int, int, int, int]]:
    """One CASE 1 publication: ``(is_decoy, theta, delta)`` — the real
    pair, or a decoy when the member's credentials cannot produce one
    (e.g. an impostor who somehow passed Phase II)."""
    try:
        theta, delta = _publish_real(member, k_prime, sid, self_distinction, rng)
        return False, theta, delta
    except Exception:
        theta, delta = _publish_decoy(member, rng)
        return True, theta, delta


def _phase3_payload_task(member, k_prime: bytes, sid: bytes,
                         self_distinction: bool, rng_state: tuple,
                         ) -> Tuple[bool, bytes, Tuple[int, int, int, int], tuple]:
    """Worker-side payload build: reconstructs the party rng from its
    state and hands the advanced state back, so the parent can continue
    the sequence exactly where inline execution would have."""
    accel_batch.warm_member(member)
    rng = random.Random()
    rng.setstate(rng_state)
    is_decoy, theta, delta = _phase3_payload(
        member, k_prime, sid, self_distinction, rng
    )
    return is_decoy, theta, delta, rng.getstate()


def _try_decrypt(k_prime: bytes, theta: bytes) -> Optional[bytes]:
    """Decrypt-or-None, so the result is cacheable as a plain value."""
    try:
        return symmetric.decrypt(k_prime, theta)
    except DecryptionError:
        return None


def _conclude_scan(member, k_prime: bytes, sid: bytes, entries,
                   valid_tags: Set[int], own_index: int,
                   shield: Optional[int], want_tags: bool,
                   cache=None) -> Tuple[Set[int], Dict[int, int]]:
    """The verification loop of Phase III conclude: which peers published
    a decryptable theta carrying a valid group signature.  Module-level
    and argument-complete so the worker pool can run it per party.

    ``cache`` (a :class:`repro.accel.batch.ScanCache`) shares decrypt and
    verify results across the parties of one room: same-group parties
    hold equal ``k_prime`` and equal verification contexts, so each
    distinct theta/signature is processed once and the recorded counters
    are replayed for everyone else.  Members without a
    ``verification_context`` (adversarial stand-ins) verify uncached —
    their verdicts may legitimately differ from everyone else's."""
    confirmed: Set[int] = set()
    tags_by_peer: Dict[int, int] = {}
    context = None
    if cache is not None:
        context_fn = getattr(member, "verification_context", None)
        context = context_fn() if context_fn is not None else None
    for entry in entries:
        if entry.index == own_index:
            continue
        metrics.count_message_received()
        if entry.index not in valid_tags:
            continue
        if cache is None:
            blob = _try_decrypt(k_prime, entry.theta)
        else:
            blob = cache.compute(
                ("dec", k_prime, entry.theta),
                lambda k=k_prime, t=entry.theta: _try_decrypt(k, t))
        if blob is None:
            continue
        message = signed_message(sid, entry.delta)
        if cache is None or context is None:
            ok = member.gsig_verify(message, blob, expected_shield=shield)
        else:
            ok = cache.compute(
                ("ver", context, shield, message, blob),
                lambda m=message, b=blob: member.gsig_verify(
                    m, b, expected_shield=shield))
        if not ok:
            continue
        if want_tags:
            signature = wire.signature_from_bytes(blob)
            tags_by_peer[entry.index] = signature.t6
        confirmed.add(entry.index)
    return confirmed, tags_by_peer


def _scan_chunk_task(entries, jobs):
    """Worker-side chunk of conclude scans: several parties' loops over
    one pickled copy of the room's entries, sharing one
    :class:`~repro.accel.batch.ScanCache`.

    Each party's scan runs under its own detached recorder so the parent
    can replay its counts into the right scope; the shared cache means
    a chunk does each distinct decrypt/verify once while every party's
    replayed books still show the full per-party cost."""
    out = []
    for (member, k_prime, sid, valid_tags, own_index,
         shield, want_tags) in jobs:
        accel_batch.warm_member(member)
    cache = accel_batch.ScanCache()
    for (member, k_prime, sid, valid_tags, own_index,
         shield, want_tags) in jobs:
        with metrics.detached() as rec:
            result = _conclude_scan(member, k_prime, sid, entries,
                                    valid_tags, own_index, shield,
                                    want_tags, cache=cache)
        out.append((result, metrics.replayable_totals(rec)))
    return out


def _pooled_scan_chunked(pool, entries, jobs, job_parties):
    """Ship the conclude scans as one contiguous chunk per worker
    (instead of one task per party), then replay each party's recorded
    counters under its own scope.  Transport cost drops from m pickles
    of the m-entry room to ``min(workers, m)``."""
    count = max(1, min(pool.workers, len(jobs)))
    base, extra = divmod(len(jobs), count)
    chunks, start = [], 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        if size:
            chunks.append(jobs[start:start + size])
            start += size
    metrics.bump("accel:batch-chunks", len(chunks))
    chunk_results = pool.run_batch(
        _scan_chunk_task, [(entries, chunk) for chunk in chunks])
    flat = [item for chunk in chunk_results for item in chunk]
    results = []
    for party, (result, counts) in zip(job_parties, flat):
        with metrics.scope(party.scope()):
            metrics.replay(counts)
        results.append(result)
    return results


def _conclude(party: _PartyRuntime, entries, publications,
              policy: HandshakePolicy, all_indices: Set[int],
              scan: Optional[Tuple[Optional[int], Set[int], Dict[int, int]]] = None,
              cache=None) -> HandshakeOutcome:
    outcome = HandshakeOutcome(index=party.index, success=False,
                               k_prime=party.k_prime)
    if party.dgka.acc:
        # The published pairs are public regardless of success — what an
        # eavesdropper (or the tracing authority) gets to see.
        outcome.transcript = HandshakeTranscript(
            sid=_session_sid(party), entries=entries
        )
    if party.k_prime is None or party.is_decoy:
        return outcome
    member = party.member
    sid = _session_sid(party)
    if scan is not None:
        shield, confirmed, tags_by_peer = scan
    else:
        shield = (member.distinction_shield(sid)
                  if policy.self_distinction else None)
        confirmed, tags_by_peer = _conclude_scan(
            member, party.k_prime, sid, entries, party.valid_tags,
            party.index, shield, policy.self_distinction, cache=cache,
        )

    outcome.confirmed_peers = confirmed

    if policy.self_distinction:
        own_tag = _own_distinction_tag(member, shield)
        seen: Dict[int, int] = {party.index: own_tag}
        duplicates: Set[int] = set()
        for peer, tag in tags_by_peer.items():
            for other, other_tag in seen.items():
                if tag == other_tag:
                    duplicates.update({peer, other})
            seen[peer] = tag
        outcome.distinct = not duplicates
        outcome.duplicate_indices = duplicates

    full = confirmed == (all_indices - {party.index})
    outcome.success = full and (outcome.distinct is not False)
    if outcome.success or (policy.partial_success and confirmed):
        outcome.session_key = hashing.kdf(
            party.k_prime + sid, "gcd-secure-channel"
        )
    return outcome


def _own_distinction_tag(member, shield: int) -> int:
    return member.credential.distinction_tag(shield)


def _outcomes_without_tracing(parties: List[_PartyRuntime]) -> List[HandshakeOutcome]:
    """Phases I-II only (the 'traceability not required' tailoring)."""
    all_indices = set(range(len(parties)))
    outcomes = []
    for party in parties:
        confirmed = set(party.valid_tags) - {party.index}
        success = (
            party.k_prime is not None and party.valid_tags == all_indices
        )
        outcome = HandshakeOutcome(
            index=party.index, success=success, confirmed_peers=confirmed
        )
        if success:
            outcome.session_key = hashing.kdf(
                party.k_prime + _session_sid(party), "gcd-secure-channel"
            )
        outcomes.append(outcome)
    return outcomes
