"""Role- and clearance-aware handshakes (paper Section 1).

The introduction's motivating refinement: "Alice might want to
authenticate herself as an agent with a certain clearance level only if
Bob is also an agent with at least the same clearance level."

We realize this with the multi-group generalization the paper endorses:
a :class:`ClearanceAuthority` maintains one GCD group per clearance level
(level keys are independent — compromising "level 2" reveals nothing about
"level 3"), and admitting an agent *at* level L enrolls her in the groups
of every level <= L (her wallet holds one credential per level).  A
handshake "at level L" is then an ordinary GCD handshake in the level-L
group: it succeeds iff every participant holds clearance >= L, and a
failed attempt reveals nothing — not even that the parties are agents at
all, let alone their levels.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.framework import GcdFramework
from repro.core.handshake import HandshakeOutcome, HandshakePolicy, run_handshake
from repro.core.scheme1 import create_scheme1
from repro.core.wallet import MembershipWallet
from repro.errors import MembershipError, ParameterError


class ClearanceAgent:
    """An agent with a clearance level: a wallet of per-level credentials."""

    def __init__(self, user_id: str, level: int) -> None:
        self.user_id = user_id
        self.level = level
        self.wallet = MembershipWallet(user_id)

    def credential_at(self, level: int):
        """The credential asserting 'clearance >= level'."""
        if level > self.level:
            raise MembershipError(
                f"{self.user_id} holds clearance {self.level} < {level}"
            )
        return self.wallet.credential_for(_level_group_id(self._org, level))

    # Set by the authority at admission time.
    _org: str = ""


def _level_group_id(org: str, level: int) -> str:
    return f"{org}/clearance-{level}"


class ClearanceAuthority:
    """One GA per clearance level, under a single organization."""

    def __init__(
        self,
        org: str,
        levels: int,
        framework_factory: Callable[..., GcdFramework] = create_scheme1,
        rng: Optional[random.Random] = None,
    ) -> None:
        if levels < 1:
            raise ParameterError("need at least one clearance level")
        self.org = org
        self.levels = levels
        self._rng = rng if rng is not None else random.Random()
        self._frameworks: Dict[int, GcdFramework] = {
            level: framework_factory(_level_group_id(org, level), rng=self._rng)
            for level in range(1, levels + 1)
        }

    def framework(self, level: int) -> GcdFramework:
        try:
            return self._frameworks[level]
        except KeyError:
            raise ParameterError(f"no clearance level {level}") from None

    def admit(self, user_id: str, level: int,
              rng: Optional[random.Random] = None) -> ClearanceAgent:
        """Admit an agent at ``level``: enroll in levels 1..level."""
        if not 1 <= level <= self.levels:
            raise ParameterError(f"level must be in 1..{self.levels}")
        agent = ClearanceAgent(user_id, level)
        agent._org = self.org
        for l in range(1, level + 1):
            agent.wallet.enroll(self._frameworks[l], rng or self._rng)
        return agent

    def revoke(self, agent: ClearanceAgent) -> None:
        """Full revocation: remove the agent from every level it holds."""
        for level in range(1, agent.level + 1):
            self._frameworks[level].remove_user(agent.user_id)
        agent.wallet.update_all()

    def downgrade(self, agent: ClearanceAgent, new_level: int) -> None:
        """Strip levels above ``new_level`` (e.g. after reassignment)."""
        if not 0 <= new_level <= agent.level:
            raise ParameterError("downgrade must lower the level")
        for level in range(new_level + 1, agent.level + 1):
            self._frameworks[level].remove_user(agent.user_id)
        agent.level = new_level
        agent.wallet.update_all()


def handshake_at_level(
    agents: Sequence[ClearanceAgent],
    level: int,
    policy: Optional[HandshakePolicy] = None,
    rng: Optional[random.Random] = None,
) -> List[HandshakeOutcome]:
    """Run a clearance-L handshake: each agent asserts its level-L
    credential.  Agents below the level participate with garbage (they
    hold no credential), modelling an under-cleared party bluffing its
    way in — and failing, without learning anything."""
    from repro.security.adversaries import Impostor

    participants: List[object] = []
    for agent in agents:
        try:
            participants.append(agent.credential_at(level))
        except MembershipError:
            participants.append(Impostor(agent.user_id, rng=rng))
    return run_handshake(participants, policy, rng)
