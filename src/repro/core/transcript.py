"""Handshake transcripts and tracing results.

A successful GCD handshake leaves each participant with the transcript
``{(theta_i, delta_i)}_{1<=i<=m}`` plus the session id; GCD.TraceUser
consumes exactly this object (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.crypto import hashing

_SIGN_DOMAIN = "gcd-handshake-sign"


@dataclass(frozen=True)
class HandshakeEntry:
    """One participant's published pair (theta_i, delta_i)."""

    index: int
    theta: bytes
    delta: Tuple[int, int, int, int]


@dataclass(frozen=True)
class HandshakeTranscript:
    """The tracing transcript of one handshake session."""

    sid: bytes
    entries: Tuple[HandshakeEntry, ...]

    @property
    def m(self) -> int:
        return len(self.entries)

    def signed_message(self, entry: HandshakeEntry) -> bytes:
        """The exact byte string participant ``entry.index`` group-signed:
        the session id bound to its own delta (so signatures cannot be
        replayed across sessions or swapped between participants)."""
        return signed_message(self.sid, entry.delta)


def signed_message(sid: bytes, delta: Tuple[int, int, int, int]) -> bytes:
    """Message-to-sign for a participant publishing ``delta`` in session
    ``sid`` (shared by signer, verifiers and the tracing authority)."""
    return hashing.encode(_SIGN_DOMAIN, sid, tuple(delta))


@dataclass(frozen=True)
class TraceResult:
    """Output of GCD.TraceUser."""

    group_id: str
    participants: Dict[int, str]  # entry index -> user id
    unresolved: Tuple[int, ...]   # entries that did not open (decoys, foreign)

    @property
    def identified(self) -> Tuple[str, ...]:
        return tuple(self.participants[i] for i in sorted(self.participants))

    @property
    def distinct_signers(self) -> int:
        """Number of distinct identities among the opened entries — the
        quantity the self-distinction experiment compares with m."""
        return len(set(self.participants.values()))
