"""Legacy shim so ``pip install -e .`` works offline without the ``wheel``
package (the environment has no network; PEP 517 editable installs need
``bdist_wheel``)."""

from setuptools import setup

setup()
