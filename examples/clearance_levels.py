#!/usr/bin/env python3
"""Clearance-level handshakes — the paper's opening scenario (§1).

"Alice might want to authenticate herself as an agent with a certain
clearance level only if Bob is also an agent with at least the same
clearance level."

We stand up an agency with three clearance tiers (one GCD group per tier;
an agent cleared at level L holds credentials for levels 1..L) and watch
who can meet whom — and, crucially, what a failed attempt reveals: nothing.

Run:  python examples/clearance_levels.py
"""

import random

from repro.core.roles import ClearanceAuthority, handshake_at_level


def main() -> None:
    rng = random.Random(13)

    agency = ClearanceAuthority("agency", levels=3, rng=rng)
    junior = agency.admit("junior-analyst", 1, rng)
    field = agency.admit("field-agent", 2, rng)
    chief = agency.admit("station-chief", 3, rng)
    director = agency.admit("director", 3, rng)
    print("agents:", ", ".join(f"{a.user_id} (L{a.level})"
                               for a in (junior, field, chief, director)))

    # Level 1: the whole agency can meet.
    outcomes = handshake_at_level([junior, field, chief, director], 1, rng=rng)
    print("level-1 handshake, all four:",
          "success" if all(o.success for o in outcomes) else "failed")
    assert all(o.success for o in outcomes)

    # Level 2: the junior cannot keep up — and the others learn only that
    # *someone* in the session was not level-2, never who is what.
    outcomes = handshake_at_level([field, chief, junior], 2, rng=rng)
    print("level-2 handshake including the junior:",
          "success" if any(o.success for o in outcomes) else
          "failed for everyone (junior revealed nothing, learned nothing)")
    assert not any(o.success for o in outcomes)
    assert outcomes[2].confirmed_peers == set()

    # Level 2 among the cleared: fine.
    outcomes = handshake_at_level([field, chief, director], 2, rng=rng)
    assert all(o.success for o in outcomes)
    print("level-2 handshake among cleared agents: success")

    # Level 3 is chiefs-only.
    outcomes = handshake_at_level([chief, director], 3, rng=rng)
    assert all(o.success for o in outcomes)
    print("level-3 handshake, chiefs only: success")

    # The chief is reassigned: downgrade strips the upper tiers.
    agency.downgrade(chief, 1)
    outcomes = handshake_at_level([chief, director], 3, rng=rng)
    assert not any(o.success for o in outcomes)
    print("after downgrade to L1, the ex-chief fails level-3 handshakes")

    # Per-level tracing: each tier's GA sees only its own sessions.
    outcomes = handshake_at_level([field, director], 2, rng=rng)
    trace = agency.framework(2).trace(outcomes[0].transcript)
    print("level-2 GA traces:", ", ".join(sorted(trace.identified)))
    assert sorted(trace.identified) == ["director", "field-agent"]


if __name__ == "__main__":
    main()
