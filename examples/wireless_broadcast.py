#!/usr/bin/env python3
"""Unobservability in a broadcast (wireless) setting, with eavesdroppers.

The paper argues the natural deployment is wireless broadcast (receiver
anonymity for free, Section 2).  We stage the scenario on the network
simulator: group members exchange their handshake messages over a shared
broadcast channel while a passive global eavesdropper records everything.
The eavesdropper then tries to tell a *successful* handshake apart from a
*failed* one — and cannot: failures publish decoys drawn from the same
ciphertext spaces (CASE 2 of Fig. 6).

Run:  python examples/wireless_broadcast.py
"""

import random

from repro import create_scheme1, run_handshake, scheme1_policy
from repro.net.adversary import Eavesdropper
from repro.net.simulator import Network, Party
from repro.security.adversaries import Impostor, TranscriptDistinguisher


class Radio(Party):
    """A device that re-broadcasts handshake payloads over the air."""

    def __init__(self, name):
        super().__init__(name)
        self.heard = []

    def on_message(self, message):
        self.heard.append(message.payload)


def main() -> None:
    rng = random.Random(99)

    agency = create_scheme1("agency", rng=rng)
    members = [agency.admit_member(f"agent-{i}", rng) for i in range(3)]

    # Radio fabric: every handshake byte goes over a broadcast channel
    # tapped by Eve.
    net = Network()
    radios = [net.register(Radio(f"radio-{i}")) for i in range(3)]
    eve = Eavesdropper(net)

    # Run a SUCCESSFUL handshake and replay its wire messages on the air.
    success = run_handshake(members, scheme1_policy(), rng)
    assert all(o.success for o in success)
    for entry in success[0].transcript.entries:
        radios[entry.index].broadcast(("phase3", entry.theta, entry.delta))
    net.run()

    # Run a FAILED handshake (an impostor joined) — decoys go on the air.
    failure = run_handshake(members[:2] + [Impostor(rng=rng)],
                            scheme1_policy(), rng)
    assert not any(o.success for o in failure)
    for entry in failure[0].transcript.entries:
        radios[entry.index].broadcast(("phase3", entry.theta, entry.delta))
    net.run()

    print(f"Eve recorded {len(eve.log)} broadcasts, "
          f"{eve.traffic_volume()} bytes total")

    # Eve's best structural distinguisher finds nothing to bite on: both
    # sessions look like per-entry random blobs.
    d = TranscriptDistinguisher()
    f_success = d.features(success[0].transcript)
    f_failure = d.features(failure[0].transcript)
    print(f"features per entry — success: "
          f"{len(f_success) / len(success[0].transcript.entries):.0f}, "
          f"failure: {len(f_failure) / len(failure[0].transcript.entries):.0f}")
    assert len(f_success) == 2 * len(success[0].transcript.entries)
    assert len(f_failure) == 2 * len(failure[0].transcript.entries)
    print("eavesdropper cannot distinguish success from failure "
          "(indistinguishability to eavesdroppers)")

    # Receiver anonymity: broadcasts carry no recipient information, and
    # Eve's sender set is just the radio fabric, not the members.
    print(f"senders Eve observed: {sorted(eve.senders())}")


if __name__ == "__main__":
    main()
