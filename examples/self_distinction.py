#!/usr/bin/env python3
"""Self-distinction: catching a rogue member who plays several roles
(paper Sections 1.1 and 8.2).

An anonymous standards committee requires three *distinct* members to
co-sponsor a proposal.  Mallory — a single legitimate member — tries to
impersonate two sponsors at once.  Because the handshake is anonymous,
nobody can "recognize" her.  Scheme 1 is fooled; scheme 2's common-T7
trick forces her two personas to emit identical T6 tags, and the honest
member rejects.

Run:  python examples/self_distinction.py
"""

import random

from repro import (
    create_scheme1,
    create_scheme2,
    run_handshake,
    scheme1_policy,
    scheme2_policy,
)


def main() -> None:
    rng = random.Random(42)

    # --- Scheme 1: no self-distinction.
    committee1 = create_scheme1("committee-v1", rng=rng)
    honest1 = committee1.admit_member("honest", rng)
    mallory1 = committee1.admit_member("mallory", rng)

    outcomes = run_handshake([honest1, mallory1, mallory1],
                             scheme1_policy(), rng)
    print("scheme 1: honest member's verdict on the '3-member' session:",
          "ACCEPTED" if outcomes[0].success else "rejected")
    assert outcomes[0].success  # fooled — exactly the drawback the paper notes

    # The GA can expose the fraud after the fact (tracing shows only two
    # distinct identities), but by then the decision was already made.
    trace = committee1.trace(outcomes[0].transcript)
    print(f"  post-hoc tracing finds {trace.distinct_signers} distinct "
          f"member(s) behind {trace.participants and len(trace.participants)} slots")

    # --- Scheme 2: self-distinction by construction.
    committee2 = create_scheme2("committee-v2", rng=rng)
    honest2 = committee2.admit_member("honest", rng)
    mallory2 = committee2.admit_member("mallory", rng)

    outcomes = run_handshake([honest2, mallory2, mallory2],
                             scheme2_policy(), rng)
    verdict = outcomes[0]
    print("scheme 2: honest member's verdict:",
          "ACCEPTED" if verdict.success else "REJECTED (duplicate detected)")
    assert not verdict.success and verdict.distinct is False
    print(f"  duplicate slots flagged: {sorted(verdict.duplicate_indices)}")

    # And with three genuinely distinct members everything still works —
    # anonymously, and unlinkably across sessions.
    third = committee2.admit_member("third", rng)
    outcomes = run_handshake([honest2, mallory2, third], scheme2_policy(), rng)
    assert all(o.success and o.distinct for o in outcomes)
    print("scheme 2 with three distinct members: handshake succeeds")


if __name__ == "__main__":
    main()
