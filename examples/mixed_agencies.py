#!/usr/bin/env python3
"""Partially-successful handshakes across agencies (paper Section 7,
footnote 2).

Five undercover officers meet: two are FBI, three are CIA.  Under the
strict Fig. 6 protocol the handshake fails for everyone (they are not all
in one group).  With the paper's partially-successful extension, each
officer discovers exactly its same-agency colleagues — and *only* them:
the FBI pair learns nothing about the CIA trio's affiliation beyond "not
mine", and vice versa.

Run:  python examples/mixed_agencies.py
"""

import random

from repro import create_scheme1, run_handshake, scheme1_policy
from repro.core.partial import subsets, subsets_are_consistent


def main() -> None:
    rng = random.Random(7)

    fbi = create_scheme1("fbi", rng=rng)
    cia = create_scheme1("cia", rng=rng)

    lineup = [
        fbi.admit_member("fbi-1", rng),     # index 0
        cia.admit_member("cia-1", rng),     # index 1
        fbi.admit_member("fbi-2", rng),     # index 2
        cia.admit_member("cia-2", rng),     # index 3
        cia.admit_member("cia-3", rng),     # index 4
    ]
    print("seating order:", [m.user_id for m in lineup])

    # Strict protocol: all-or-nothing.
    outcomes = run_handshake(lineup, scheme1_policy(), rng)
    assert not any(o.success for o in outcomes)
    print("strict policy: every participant rejects (mixed groups)")

    # Partially-successful extension.
    outcomes = run_handshake(lineup, scheme1_policy(partial_success=True), rng)
    assert subsets_are_consistent(outcomes)
    for clique in subsets(outcomes):
        names = sorted(lineup[i].user_id for i in clique)
        print(f"discovered clique of {len(clique)}: {', '.join(names)}")
    # The FBI pair and CIA trio each share a clique-wide channel key.
    assert outcomes[0].session_key == outcomes[2].session_key is not None
    assert (outcomes[1].session_key == outcomes[3].session_key
            == outcomes[4].session_key is not None)
    assert outcomes[0].session_key != outcomes[1].session_key
    print("each clique derived its own secure-channel key")

    # Each agency's GA can trace only its own members in the transcript.
    transcript = outcomes[0].transcript
    fbi_trace = fbi.trace(transcript)
    cia_trace = cia.trace(transcript)
    print(f"FBI authority identifies: {sorted(fbi_trace.identified)}")
    print(f"CIA authority identifies: {sorted(cia_trace.identified)}")
    assert sorted(fbi_trace.identified) == ["fbi-1", "fbi-2"]
    assert sorted(cia_trace.identified) == ["cia-1", "cia-2", "cia-3"]


if __name__ == "__main__":
    main()
