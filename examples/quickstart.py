#!/usr/bin/env python3
"""Quickstart: a three-party secret handshake.

Three FBI agents who have never met want to verify that they are all FBI
agents — without any of them revealing their affiliation unless *everyone*
present turns out to be an agent.  This is exactly the scenario of the
paper's introduction, generalized from two parties to m.

Run:  python examples/quickstart.py
"""

import random

from repro import create_scheme1, run_handshake, scheme1_policy


def main() -> None:
    rng = random.Random(2005)  # deterministic demo

    # --- SHS.CreateGroup: the group authority sets up the FBI's context.
    fbi = create_scheme1("fbi", rng=rng)

    # --- SHS.AdmitMember: three agents enrol (each keeps its membership
    #     secret; the GA never learns it — that is what makes framing
    #     impossible).
    alice = fbi.admit_member("alice", rng)
    bob = fbi.admit_member("bob", rng)
    carol = fbi.admit_member("carol", rng)
    print("Enrolled: alice, bob, carol in group 'fbi'")

    # --- SHS.Handshake: the three of them meet and run the three-phase
    #     protocol (DGKA key agreement; MAC exchange; encrypted group
    #     signatures).
    outcomes = run_handshake([alice, bob, carol], scheme1_policy(), rng)

    for outcome in outcomes:
        status = "SUCCESS" if outcome.success else "failed"
        print(f"participant {outcome.index}: {status}, "
              f"confirmed peers: {sorted(outcome.confirmed_peers)}")
    assert all(o.success for o in outcomes)

    # All three now share a fresh secure-channel key.
    keys = {o.session_key for o in outcomes}
    assert len(keys) == 1
    print(f"shared secure-channel key: {outcomes[0].session_key.hex()[:32]}…")

    # --- SHS.TraceUser: given the transcript, the group authority (and
    #     only it) can identify who took part.
    trace = fbi.trace(outcomes[0].transcript)
    print(f"GA traces the session to: {', '.join(sorted(trace.identified))}")

    # A stranger crashing the party changes everything: nobody succeeds,
    # and the stranger learns nothing about who was in which group.
    from repro.security.adversaries import Impostor
    outcomes = run_handshake([alice, bob, Impostor(rng=rng)],
                             scheme1_policy(), rng)
    assert not any(o.success for o in outcomes)
    print("with an impostor present: handshake correctly fails for everyone")


if __name__ == "__main__":
    main()
