#!/usr/bin/env python3
"""The full membership lifecycle, including the Section 3 dual-revocation
attack.

A member is revoked; the group authority posts a rekey (CGKD.Leave) and
an encrypted GSIG revocation to the bulletin board.  The revoked member
can decrypt neither.  Then an *unrevoked accomplice leaks the fresh group
key* to her — the attack the paper uses to argue that GSIG revocation
must be kept alongside CGKD revocation.  The handshake still fails,
because her group signature no longer verifies.

Run:  python examples/revocation_lifecycle.py
"""

import random

from repro import create_scheme1, run_handshake, scheme1_policy
from repro.security.adversaries import RevokedInsider


def main() -> None:
    rng = random.Random(3)

    ring = create_scheme1("resistance-cell", rng=rng)
    members = {name: ring.admit_member(name, rng)
               for name in ("ana", "boris", "clara", "dmitri")}
    print("cell of four established; bulletin board posts:",
          len(ring.authority.board))

    # All four handshake happily.
    outcomes = run_handshake(list(members.values()), scheme1_policy(), rng)
    assert all(o.success for o in outcomes)
    print("4-way handshake: success")

    # Dmitri is compromised and revoked.
    ring.remove_user("dmitri")
    print("dmitri revoked; CRL:", ring.authority.crl)
    assert members["dmitri"].revoked

    # The survivors re-handshake (their credentials updated via the board
    # without any interaction — reusable, multi-show credentials).
    survivors = [members[n] for n in ("ana", "boris", "clara")]
    outcomes = run_handshake(survivors, scheme1_policy(), rng)
    assert all(o.success for o in outcomes)
    print("3-way handshake among survivors: success")

    # Dmitri tries to tag along with his stale state: total failure.
    outcomes = run_handshake(survivors + [members["dmitri"]],
                             scheme1_policy(partial_success=True), rng)
    assert not any(o.success for o in outcomes)
    assert all(3 not in o.confirmed_peers for o in outcomes[:3])
    print("dmitri with stale state: excluded (not even partial success)")

    # The Section-3 attack: boris (unrevoked, malicious) leaks the current
    # group key to dmitri, who ignores his revocation flag.
    leaked_key = ring.authority.group_key()
    dmitri_armed = RevokedInsider(members["dmitri"], leaked_key)
    outcomes = run_handshake([members["ana"], members["clara"], dmitri_armed],
                             scheme1_policy(), rng)
    accepted = any(o.success for o in outcomes[:2])
    print("dmitri with leaked CGKD key:",
          "ACCEPTED (broken!)" if accepted else
          "rejected — GSIG revocation caught him (dual revocation works)")
    assert not accepted


if __name__ == "__main__":
    main()
