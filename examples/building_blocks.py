#!/usr/bin/env python3
"""A tour of the three GCD building blocks, used standalone.

The framework is a *compiler* (Section 7): anything satisfying the
Fig. 3/4/5 interfaces plugs in.  This example exercises each block by
itself — the same objects the compiler composes — and then assembles a
custom GCD group that swaps LKH for NNL subset difference and
Burmester-Desmedt for GDH.2.

Run:  python examples/building_blocks.py
"""

import random

from repro import GcdFramework, HandshakePolicy, run_handshake
from repro.cgkd.nnl import NnlController, NnlMember
from repro.dgka import burmester_desmedt as bd
from repro.dgka.base import run_locally
from repro.dgka.gdh import GdhParty
from repro.gsig import acjt


def main() -> None:
    rng = random.Random(17)

    # --- Building block I: ACJT group signatures ------------------------
    print("## GSIG: ACJT group signatures with accumulator revocation")
    manager = acjt.AcjtManager("tiny", rng)
    alice, update_a = manager.join("alice", rng)
    bob, update_b = manager.join("bob", rng)
    alice.apply_update(update_b)
    signature = alice.sign(b"anonymous statement", rng)
    ok = acjt.verify(manager.public_key, b"anonymous statement", signature,
                     manager.member_view())
    print(f"  member signs anonymously; verifies: {ok}")
    print(f"  only the manager can open it: signer = "
          f"{manager.open(b'anonymous statement', signature)}")

    # --- Building block II: NNL subset-difference broadcast encryption --
    print("## CGKD: NNL subset-difference (stateless broadcast encryption)")
    controller = NnlController(16, "sd", rng)
    members = {}
    for i in range(6):
        welcome, rekey = controller.join(f"u{i}")
        for member in members.values():
            member.rekey(rekey)
        members[f"u{i}"] = NnlMember(welcome)
    rekey = controller.leave("u3")
    evicted = members.pop("u3")
    survivors_ok = all(m.rekey(rekey) for m in members.values())
    print(f"  after revoking u3: survivors rekeyed = {survivors_ok}, "
          f"evicted locked out = {not evicted.rekey(rekey)}, "
          f"header size = {rekey.size} ciphertexts")

    # --- Building block III: Burmester-Desmedt key agreement ------------
    print("## DGKA: Burmester-Desmedt conference keying")
    parties = bd.make_parties(5, rng=rng)
    run_locally(parties)
    agreed = len({p.session_key for p in parties}) == 1
    print(f"  5 parties, 2 broadcast rounds, one shared key: {agreed}")

    # --- The compiler: a custom GCD assembly -----------------------------
    print("## GCD assembled from NNL(SD) + GDH.2 + ACJT")
    framework = GcdFramework.create(
        "custom", gsig_kind="acjt",
        cgkd_factory=lambda r: NnlController(16, "sd", r), rng=rng,
    )
    users = [framework.admit_member(f"user-{i}", rng) for i in range(3)]
    policy = HandshakePolicy(
        dgka_factory=lambda i, m, r: GdhParty(i, m, rng=r)
    )
    outcomes = run_handshake(users, policy, rng)
    print(f"  3-party handshake over the custom stack: "
          f"{'success' if all(o.success for o in outcomes) else 'failed'}")
    assert all(o.success for o in outcomes)


if __name__ == "__main__":
    main()
