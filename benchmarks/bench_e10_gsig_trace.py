"""E10 — GSIG operation costs and GCD.TraceUser (Sections 4, 7).

Reports sign/verify/open latency and signature size for both GSIG
components (ACJT with the fused accumulator proof; the KTY variant), and
the cost of GCD.TraceUser in its two modes: positional (one decryption
per entry) and the paper's stated worst case ("the authority needs to try
to search the right session key"), which is quadratic in m."""

import time

import pytest

from _tables import emit
from repro.core import wire
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.gsig import acjt, kty


def _time(fn, repeats=5):
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats * 1000  # ms


def test_e10a_gsig_operation_costs(benchmark, bench_scheme1, bench_scheme2):
    rows = []

    def run():
        s1, s2 = bench_scheme1, bench_scheme2
        acjt_manager = s1.framework.authority.gsig_manager
        acjt_cred = s1.members[0].credential
        kty_manager = s2.framework.authority.gsig_manager
        kty_cred = s2.members[0].credential

        acjt_sig = acjt_cred.sign(b"bench", s1.rng)
        view = acjt.AcjtMemberView(acjt_cred.acc_value, acjt_cred.acc_epoch)
        rows.append((
            "ACJT+accumulator",
            f"{_time(lambda: acjt_cred.sign(b'bench', s1.rng)):.1f}",
            f"{_time(lambda: acjt.verify(acjt_manager.public_key, b'bench', acjt_sig, view)):.1f}",
            f"{_time(lambda: acjt_manager.open(b'bench', acjt_sig)):.1f}",
            len(wire.signature_to_bytes(acjt_sig)),
        ))

        kty_sig = kty_cred.sign(b"bench", s2.rng)
        kty_view = kty_cred.member_view()
        rows.append((
            "KTY variant",
            f"{_time(lambda: kty_cred.sign(b'bench', s2.rng)):.1f}",
            f"{_time(lambda: kty.verify(kty_manager.public_key, b'bench', kty_sig, kty_view)):.1f}",
            f"{_time(lambda: kty_manager.open(b'bench', kty_sig)):.1f}",
            len(wire.signature_to_bytes(kty_sig)),
        ))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e10a_gsig_costs",
        "E10a: GSIG operation latency (ms, 'tiny' profile) and signature size",
        ("scheme", "sign", "verify", "open", "signature bytes"),
        rows,
    )


def test_e10b_trace_cost(benchmark, bench_scheme1, bench_other_group):
    from repro import metrics

    rows = []

    def _attempts(framework, transcript, exhaustive):
        metrics.reset()
        result = framework.trace(transcript, exhaustive=exhaustive)
        return result, metrics.total().extra.get("trace-decrypt-attempts", 0)

    def run():
        world, other = bench_scheme1, bench_other_group
        # Same-group sessions: every participant shares one k', so even
        # the search variant finds the key on the first try.
        for m in (2, 4, 6):
            outcomes = run_handshake(world.members[:m], scheme1_policy(),
                                     world.rng)
            transcript = outcomes[0].transcript
            t_positional = _time(
                lambda: world.framework.trace(transcript), repeats=2
            )
            result, a_pos = _attempts(world.framework, transcript, False)
            _, a_exh = _attempts(world.framework, transcript, True)
            rows.append((f"{m} (one group)", f"{t_positional:.0f} ms",
                         a_pos, a_exh, len(result.identified)))
            assert len(result.identified) == m
            assert a_pos == m and a_exh == m

        # Mixed (partial) sessions are the paper's worst case: the GA's
        # recovered keys fail on every foreign theta, so the search tries
        # a keys for each of the b foreign entries: a + a*b attempts.
        for a, b in ((2, 2), (3, 3), (4, 4)):
            lineup = world.members[:a] + other.members[:b]
            outcomes = run_handshake(lineup,
                                     scheme1_policy(partial_success=True),
                                     world.rng)
            transcript = outcomes[0].transcript
            result, a_pos = _attempts(world.framework, transcript, False)
            _, a_exh = _attempts(world.framework, transcript, True)
            rows.append((f"{a}+{b} (mixed)", "", a_pos, a_exh,
                         len(result.identified)))
            assert len(result.identified) == a
            assert a_pos == a
            assert a_exh == a + a * b  # quadratic worst case

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e10b_trace",
        "E10b: GCD.TraceUser — decryption attempts: positional O(m) vs "
        "the paper's worst-case key search (quadratic on mixed sessions)",
        ("session", "latency", "attempts (positional)",
         "attempts (worst case)", "identified"),
        rows,
    )
