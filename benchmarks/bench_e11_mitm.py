"""E11 — MITM on the raw DGKA, repaired by Phase II (Fig. 5 remark).

"We are aware that unauthenticated key agreement protocols are
susceptible to man-in-the-middle (MITM) attacks; this is addressed ...
through the use of our second building block — CGKD."

The experiment: an active adversary splits the m BD participants into two
halves and relays its own contributions across the cut.  On the *raw*
DGKA the halves happily complete with different keys (the attack
succeeds silently); inside GCD, Phase II's MAC under k' = k* XOR k
exposes the divergence and the handshake refuses (or, under the partial
policy, degrades to the two halves — never crossing the adversary)."""

import random

import pytest

from _tables import emit
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.crypto.params import dh_group
from repro.dgka import burmester_desmedt as bd
from repro.dgka.base import run_locally
from repro.security.adversaries import BdMitmSplitter


def test_e11_mitm(benchmark, bench_scheme1):
    rows = []

    def run():
        rng = random.Random(111)
        group = dh_group(256)

        # Raw DGKA: the textbook MITM (self-consistent virtual halves)
        # completes silently — each half agrees on a key shared with the
        # adversary, and no participant can tell.
        parties = bd.make_parties(4, group, rng)
        run_locally(parties, tamper=BdMitmSplitter(group, 4, 2, rng))
        raw_all_acc = all(p.acc for p in parties)
        left = {parties[0].session_key, parties[1].session_key}
        right = {parties[2].session_key, parties[3].session_key}
        raw_split = len(left) == 1 and len(right) == 1 and not (left & right)
        rows.append(("raw BD (no GCD)", "completed" if raw_all_acc else "aborted",
                     "SPLIT UNDETECTED" if raw_split else "consistent"))
        assert raw_all_acc and raw_split

        # GCD strict policy: the same attack makes everyone reject.
        outcomes = run_handshake(bench_scheme1.members[:4], scheme1_policy(),
                                 bench_scheme1.rng,
                                 tamper=BdMitmSplitter(group, 4, 2, rng))
        strict_ok = not any(o.success for o in outcomes)
        rows.append(("GCD strict", "all reject", "detected by Phase II MACs"
                     if strict_ok else "MISSED"))
        assert strict_ok

        # GCD partial policy: confirmation never crosses the MITM cut —
        # the adversary cannot use its session keys because it lacks the
        # CGKD group key that Phase II folds in.
        outcomes = run_handshake(
            bench_scheme1.members[:4], scheme1_policy(partial_success=True),
            bench_scheme1.rng, tamper=BdMitmSplitter(group, 4, 2, rng),
        )
        crossings = sum(
            1 for o in outcomes
            for peer in o.confirmed_peers
            if (o.index < 2) != (peer < 2)
        )
        rows.append(("GCD partial", "subsets stay within halves",
                     f"{crossings} cross-cut confirmations"))
        assert crossings == 0

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e11_mitm",
        "E11: MITM split attack — raw DGKA vs GCD (Fig. 5 remark)",
        ("setting", "outcome", "detection"),
        rows,
    )
