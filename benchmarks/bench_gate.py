"""Live migration + gateway — drain as a move, measured against the shed.

Three legs, same seeded rooms (m=2) throughout, all placed on shard 0 of
a 2-shard cluster so a drain of shard 0 has to deal with every one:

* ``migrate`` — each room is held mid-fill (first member joined), then
  ``ClusterRouter.drain_shard(0)`` live-migrates the lot to shard 1;
  the second members join afterwards and every room completes with
  **zero** client retries of any kind — the PR's acceptance criterion.
  ``svc-cluster:restore-latency`` (quiesce → re-spliced) is the
  migration cost distribution.
* ``shed`` — the legacy baseline: the same mid-fill setup, but the
  drain goes straight to the worker (``monitor.drain``), which aborts
  its filling rooms.  Every first member pays a rejoin retry — the
  number the live migration drives to zero.
* ``gateway`` — rooms spawned over HTTP (``POST /rooms``) against the
  cluster while shard 0 is live-drained mid-burst: zero failed rooms,
  zero full-handshake retries, ``/metrics`` parses as Prometheus
  exposition, and ``gate:request-latency`` books every request.

Artifacts: ``results/gate.txt`` (table) and ``BENCH_gate.json`` at the
repo root (CI's ``gate-smoke`` job runs this and uploads it).
"""

import asyncio
import json
import os
import random
from dataclasses import replace

from _tables import emit
from repro import metrics
from repro.cluster import ClusterConfig, ClusterRouter
from repro.cluster.placement import HashRing
from repro.core.scheme1 import scheme1_policy
from repro.gate import GatewayConfig, HttpGateway
from repro.service import ClientConfig, join_room

ROOMS = 6
SHARDS = 2
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_gate.json")

_RETRY_COUNTERS = ("svc-client:retries", "svc-client:busy-retries",
                   "svc-client:rejoin-retries", "svc-client:room-aborts")


def _rooms_on_shard(config, shard_id, prefix, count):
    """First ``count`` room names the placement ring puts on ``shard_id``."""
    ring = HashRing(replicas=config.ring_replicas)
    for i in range(config.shards):
        ring.add(i)
    names, i = [], 0
    while len(names) < count:
        name = f"{prefix}-{i}"
        if ring.place(name) == shard_id:
            names.append(name)
        i += 1
    return names


def _retries(recorder):
    extra = recorder.total().extra
    return {name: extra.get(name, 0) for name in _RETRY_COUNTERS}


async def _drain_leg(members, policy, live):
    """Mid-fill drain of shard 0 — live migration or the legacy shed."""
    config = ClusterConfig(shards=SHARDS, heartbeat_interval=0.1)
    prefix = "mig" if live else "shed"
    names = _rooms_on_shard(config, 0, prefix, ROOMS)
    loop = asyncio.get_running_loop()
    async with ClusterRouter(config) as router:
        cfg = ClientConfig(port=router.port, m=2, deadline=60.0,
                           backoff_base=0.05, backoff_max=0.3)
        firsts = []
        for i, name in enumerate(names):
            joined = asyncio.Event()
            firsts.append(asyncio.ensure_future(join_room(
                members[0], replace(cfg, room=name), policy,
                random.Random(7000 + i), joined=joined)))
            await joined.wait()
        started = loop.time()
        if live:
            report = await router.drain_shard(0)
        else:
            router.monitor.drain(0)
            report = None
        drain_wall = loop.time() - started
        seconds = [asyncio.ensure_future(join_room(
            members[1], replace(cfg, room=name), policy,
            random.Random(8000 + i)))
            for i, name in enumerate(names)]
        outcomes = await asyncio.gather(*firsts, *seconds)
    return outcomes, report, drain_wall


async def _http_request(port, method, path, body=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = body if body is not None else b""
    head = (f"{method} {path} HTTP/1.1\r\n"
            f"Host: 127.0.0.1:{port}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n")
    writer.write(head.encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    code = int(header_blob.split(b"\r\n", 1)[0].decode().split(" ")[1])
    return code, body_blob


def _parse_prometheus(text):
    """Every line is a comment or ``name{labels} value`` — or it isn't
    Prometheus exposition.  Returns the sample count."""
    samples = 0
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value = line.rpartition(" ")
        assert name_part, f"unparseable exposition line: {line!r}"
        float(value)                       # raises if not a number
        metric = name_part.split("{", 1)[0]
        assert metric.replace("_", "").isalnum(), \
            f"bad metric name in line: {line!r}"
        samples += 1
    assert samples > 0, "empty exposition"
    return samples


async def _gateway_leg(members, policy):
    """Rooms over HTTP while shard 0 live-drains mid-burst."""
    config = ClusterConfig(shards=SHARDS, heartbeat_interval=0.1)
    names = _rooms_on_shard(config, 0, "gatebench", ROOMS)
    async with ClusterRouter(config) as router:
        gateway = await HttpGateway(
            GatewayConfig(target_port=router.port, deadline=60.0),
            members, policy).start()
        try:
            for name in names:
                code, _ = await _http_request(
                    gateway.port, "POST", "/rooms",
                    json.dumps({"room": name, "m": 2}).encode())
                assert code == 202, f"POST /rooms -> {code}"
            # Drain shard 0 while the burst is in flight: anything still
            # on it moves live; anything already done stays done.
            report = await router.drain_shard(0)
            pending = set(names)
            states = {}
            while pending:
                await asyncio.sleep(0.05)
                for name in list(pending):
                    code, body = await _http_request(
                        gateway.port, "GET", f"/rooms/{name}")
                    assert code == 200
                    doc = json.loads(body)
                    if doc["state"] != "running":
                        states[name] = doc
                        pending.discard(name)
            code, metrics_body = await _http_request(
                gateway.port, "GET", "/metrics")
            assert code == 200
        finally:
            await gateway.shutdown()
    return states, report, metrics_body.decode()


def test_gate_migration(benchmark, bench_scheme1):
    members = bench_scheme1.members[:2]
    policy = scheme1_policy()
    report = {}

    def run():
        rec = metrics.Recorder()
        with metrics.using(rec):
            outcomes, drain, wall = asyncio.run(
                asyncio.wait_for(_drain_leg(members, policy, live=True),
                                 120.0))
        report["migrate"] = (outcomes, drain, wall, rec)

        rec = metrics.Recorder()
        with metrics.using(rec):
            outcomes, _, wall = asyncio.run(
                asyncio.wait_for(_drain_leg(members, policy, live=False),
                                 120.0))
        report["shed"] = (outcomes, None, wall, rec)

        rec = metrics.Recorder()
        with metrics.using(rec):
            states, drain, exposition = asyncio.run(
                asyncio.wait_for(_gateway_leg(members, policy), 120.0))
        report["gateway"] = (states, drain, exposition, rec)

    benchmark.pedantic(run, rounds=1, iterations=1)

    # --- migrate leg: every room moved, zero retries of any kind. ---
    outcomes, drain, migrate_wall, rec = report["migrate"]
    assert all(o.success for o in outcomes)
    assert drain == {"migrated": ROOMS, "completed": 0, "failed": 0}
    migrate_retries = _retries(rec)
    assert all(v == 0 for v in migrate_retries.values()), migrate_retries
    migrations = rec.total().extra.get("svc-cluster:migrations", 0)
    assert migrations == ROOMS
    restore = rec.histograms()["svc-cluster:restore-latency"]
    assert restore.total == ROOMS

    # --- shed leg: same drain, legacy path — the retries come back. ---
    outcomes, _, shed_wall, rec = report["shed"]
    assert all(o.success for o in outcomes)
    shed_retries = _retries(rec)
    assert shed_retries["svc-client:rejoin-retries"] >= ROOMS, shed_retries

    # --- gateway leg: zero failed rooms, Prometheus parses. ---
    states, gate_drain, exposition, rec = report["gateway"]
    assert all(doc["state"] == "completed" for doc in states.values()), \
        {k: v["state"] for k, v in states.items()}
    assert all(doc["result"]["successes"] == 2 for doc in states.values())
    gate_retries = _retries(rec)
    assert gate_retries["svc-client:retries"] == 0, gate_retries
    samples = _parse_prometheus(exposition)
    latency = rec.histograms()["gate:request-latency"]
    assert latency.total >= ROOMS + 1      # every POST/GET booked

    rows = [
        ("migrate", ROOMS, f"{migrate_wall:.3f}",
         str(sum(migrate_retries.values())),
         f"p99={restore.percentile(0.99) * 1000:.1f}ms"),
        ("shed", ROOMS, f"{shed_wall:.3f}",
         str(sum(shed_retries.values())), "-"),
        ("gateway", ROOMS, "-", str(sum(gate_retries.values())),
         f"{gate_drain['migrated']} migrated mid-burst"),
    ]
    emit(
        "gate",
        f"Drain as live migration vs legacy shed ({ROOMS} mid-fill rooms, "
        f"m=2, {SHARDS} shards) + HTTP gateway burst under drain",
        ("leg", "rooms", "drain wall(s)", "client retries", "notes"),
        rows,
    )

    doc = {
        "rooms": ROOMS,
        "shards": SHARDS,
        "migrate": {
            "drain_report": drain,
            "migrations": migrations,
            "drain_wall_s": round(migrate_wall, 6),
            "client_retries": migrate_retries,
            "restore_latency": restore.summary(),
        },
        "shed_baseline": {
            "drain_wall_s": round(shed_wall, 6),
            "client_retries": shed_retries,
        },
        "gateway": {
            "rooms": {name: s["state"] for name, s in states.items()},
            "drain_report": gate_drain,
            "client_retries": gate_retries,
            "prometheus_samples": samples,
            "request_latency": latency.summary(),
        },
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
