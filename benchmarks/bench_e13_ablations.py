"""E13 — ablations over the GCD assembly (framework flexibility, §7/§9).

GCD is a compiler, so its building blocks are swappable.  Three ablations
quantify the design choices this reproduction makes:

* **A: CGKD backend** — LKH vs NNL-SD vs star behind the same framework:
  per-revocation rekey deliveries and bulletin-board bytes.
* **B: tracing cryptosystem** — Cramer-Shoup (standard-model IND-CCA2, the
  default) vs hybrid ElGamal (ROM IND-CCA2): per-delta cost.  The paper
  only demands "an IND-CCA2 secure public key cryptosystem"; this shows
  what the standard-model choice costs.
* **C: DGKA inside GCD** — BD vs GDH.2 end-to-end handshake
  exponentiations (the round structure changes, the O(m) claim must not).
"""

import random
import time

import pytest

from _tables import emit
from repro import metrics
from repro.cgkd.lkh import LkhController
from repro.cgkd.nnl import NnlController
from repro.cgkd.star import StarController
from repro.core.framework import GcdFramework
from repro.core.handshake import HandshakePolicy, run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.crypto.cramer_shoup import CramerShoup
from repro.crypto.elgamal import HybridElGamal
from repro.crypto.params import dh_group
from repro.dgka.gdh import GdhParty


def test_e13a_cgkd_backend(benchmark):
    rows = []

    def run():
        rng = random.Random(131)
        backends = (
            ("star", lambda r: StarController(r)),
            ("lkh", lambda r: LkhController(4, r)),
            ("nnl-sd", lambda r: NnlController(16, "sd", r)),
            ("nnl-cs", lambda r: NnlController(16, "cs", r)),
        )
        for name, factory in backends:
            framework = GcdFramework.create(f"abl-{name}", cgkd_factory=factory,
                                            rng=rng)
            members = [framework.admit_member(f"u{i}", rng) for i in range(8)]
            board_before = sum(
                len(p.payload) for p in framework.authority.board.read_since(0)
            )
            framework.remove_user("u3")
            posts = framework.authority.board.read_since(0)
            revoke_bytes = sum(len(p.payload) for p in posts) - board_before
            # Sanity: survivors still handshake.
            outcomes = run_handshake([members[0], members[1]],
                                     scheme1_policy(), rng)
            assert all(o.success for o in outcomes)
            rows.append((name, 8, revoke_bytes))
        # Shape: tree-based backends beat the star on revocation bytes.
        sizes = {name: size for name, _, size in rows}
        assert sizes["lkh"] < sizes["star"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e13a_cgkd_backend",
        "E13a: CGKD backend ablation inside GCD — bytes posted per revocation (n=8)",
        ("backend", "members", "revocation post bytes"),
        rows,
    )


def test_e13b_tracing_pke(benchmark):
    rows = []

    def run():
        rng = random.Random(132)
        group = dh_group(384)
        payload = rng.getrandbits(256).to_bytes(32, "big")

        def timeit(fn, repeats=20):
            start = time.perf_counter()
            for _ in range(repeats):
                fn()
            return (time.perf_counter() - start) / repeats * 1000

        cs_pk, cs_sk = CramerShoup.keygen(group, rng)
        ct = CramerShoup.encrypt_bytes(cs_pk, payload, rng)
        metrics.reset()
        CramerShoup.encrypt_bytes(cs_pk, payload, rng)
        cs_enc_ops = metrics.total().modexp
        rows.append((
            "Cramer-Shoup (default)", "standard model",
            f"{timeit(lambda: CramerShoup.encrypt_bytes(cs_pk, payload, rng)):.2f}",
            f"{timeit(lambda: CramerShoup.decrypt_bytes(cs_sk, ct)):.2f}",
            cs_enc_ops,
        ))

        eg_pk, eg_sk = HybridElGamal.keygen(group, rng)
        eg_ct = HybridElGamal.encrypt(eg_pk, payload, rng)
        metrics.reset()
        HybridElGamal.encrypt(eg_pk, payload, rng)
        eg_enc_ops = metrics.total().modexp
        rows.append((
            "Hybrid ElGamal", "random oracle",
            f"{timeit(lambda: HybridElGamal.encrypt(eg_pk, payload, rng)):.2f}",
            f"{timeit(lambda: HybridElGamal.decrypt(eg_sk, eg_ct)):.2f}",
            eg_enc_ops,
        ))
        # The standard-model scheme costs more exponentiations per delta.
        assert cs_enc_ops > eg_enc_ops

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e13b_tracing_pke",
        "E13b: tracing-cryptosystem ablation — per-delta cost (384-bit group)",
        ("cryptosystem", "IND-CCA2 model", "encrypt ms", "decrypt ms",
         "encrypt modexp"),
        rows,
    )


def test_e13c_dgka_inside_gcd(benchmark, bench_scheme1):
    rows = []

    def run():
        world = bench_scheme1
        gdh_policy = HandshakePolicy(
            dgka_factory=lambda i, m, r: GdhParty(i, m, rng=r)
        )
        for m in (2, 4, 6):
            metrics.reset()
            outcomes = run_handshake(world.members[:m], scheme1_policy(),
                                     world.rng)
            assert all(o.success for o in outcomes)
            bd_ops = metrics.snapshot()["hs:0"].modexp
            metrics.reset()
            outcomes = run_handshake(world.members[:m], gdh_policy, world.rng)
            assert all(o.success for o in outcomes)
            gdh_ops = metrics.snapshot()["hs:0"].modexp
            rows.append((m, bd_ops, gdh_ops))
        # Both assemblies stay O(m): growth from m=4 to m=6 is bounded by
        # the m=2 baseline.
        for column in (1, 2):
            assert rows[2][column] - rows[1][column] < rows[0][column]

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e13c_dgka_in_gcd",
        "E13c: DGKA ablation inside GCD — party-0 modexp per handshake",
        ("m", "with BD (default)", "with GDH.2"),
        rows,
    )
