"""E6 — dual revocation (Section 3, final paragraph).

The paper's argument for keeping *both* revocation mechanisms: if only
CGKD revocation existed, an unrevoked member could leak the current group
key to a revoked member, who could then "take part in secret handshakes
and successfully fool legitimate members.  Whereas, if both revocation
components are in place, the attack fails since the revoked member's
group signature would not be accepted as valid."

We stage exactly that attack against both instantiations, plus the
control experiments (revoked member without the leak; honest member with
the leak), and report who gets in."""

import random

import pytest

from _tables import emit
from repro.core.handshake import run_handshake
from repro.core.scheme1 import create_scheme1, scheme1_policy
from repro.core.scheme2 import create_scheme2, scheme2_policy
from repro.security.adversaries import RevokedInsider, StolenKeyImpostor


def _stage(factory, policy, seed: int):
    rng = random.Random(seed)
    framework = factory("e6", rng=rng)
    honest = [framework.admit_member(f"h{i}", rng) for i in range(2)]
    mallory = framework.admit_member("mallory", rng)
    framework.remove_user("mallory")
    leaked = framework.authority.group_key()

    results = {}
    # (a) Revoked member without any leak: cannot even pass Phase II.
    outcomes = run_handshake(honest + [StolenKeyImpostor(b"\x00" * 32, rng=rng)],
                             policy, rng)
    results["revoked, no leak"] = any(o.success for o in outcomes[:2])
    # (b) The Section-3 attack: revoked member + leaked CGKD key.
    adversary = RevokedInsider(mallory, leaked)
    outcomes = run_handshake(honest + [adversary], policy, rng)
    results["revoked + leaked key (the attack)"] = any(
        o.success for o in outcomes[:2]
    )
    # (c) Control: the honest members by themselves still succeed.
    outcomes = run_handshake(honest, policy, rng)
    results["honest members only"] = all(o.success for o in outcomes)
    return results


def test_e6_dual_revocation(benchmark):
    rows = []

    def run():
        for name, factory, policy in (
            ("scheme1", create_scheme1, scheme1_policy()),
            ("scheme2", create_scheme2, scheme2_policy()),
        ):
            results = _stage(factory, policy, 61)
            for scenario, accepted in results.items():
                rows.append((name, scenario,
                             "ACCEPTED" if accepted else "rejected"))
            assert not results["revoked, no leak"]
            assert not results["revoked + leaked key (the attack)"]
            assert results["honest members only"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e6_revocation",
        "E6: dual-revocation attack matrix (paper: leaked CGKD key must not help)",
        ("scheme", "scenario", "honest verdict"),
        rows,
    )
