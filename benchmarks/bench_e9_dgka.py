"""E9 — DGKA substrate costs (Section 6, Appendix D).

The paper singles out Burmester-Desmedt [11] (and its Katz-Yung variant
[21]) as "particularly efficient — each participant needs to compute a
constant number of modular exponentiations", versus GDH-style chains [30]
where the i-th participant computes O(i) exponentiations.

We count per-party full modular exponentiations and broadcast rounds for
both protocols across m.  BD's per-party count includes the m-1
*small-exponent* powers of the key assembly (exponents < m), which our
counter tallies as modexp too; the table therefore separates round
exponentiations (the expensive, full-size ones) from the total."""

import random

import pytest

from _tables import emit
from repro import metrics
from repro.dgka import burmester_desmedt as bd
from repro.dgka import gdh
from repro.dgka.base import run_locally

SWEEP = (2, 4, 8, 16)


def _profile(make_parties, m: int, rng):
    metrics.reset()
    parties = make_parties(m, rng=rng)
    scopes = []
    rounds = parties[0].rounds
    for round_no in range(rounds):
        payloads = {}
        for party in parties:
            with metrics.scope(f"p{party.index}"):
                out = party.emit(round_no)
            if out is not None:
                payloads[party.index] = out
        for party in parties:
            with metrics.scope(f"p{party.index}"):
                party.absorb(round_no, dict(payloads))
    assert len({p.session_key for p in parties}) == 1
    snap = metrics.snapshot()
    per_party = [snap[f"p{i}"].modexp for i in range(m)]
    return per_party, rounds


def test_e9_dgka_profiles(benchmark):
    rows = []

    def run():
        rng = random.Random(91)
        bd_max = {}
        gdh_max = {}
        for m in SWEEP:
            bd_counts, bd_rounds = _profile(bd.make_parties, m, rng)
            gdh_counts, gdh_rounds = _profile(gdh.make_parties, m, rng)
            bd_max[m] = max(bd_counts)
            gdh_max[m] = max(gdh_counts)
            rows.append((
                m,
                f"{min(bd_counts)}..{max(bd_counts)}", bd_rounds,
                f"{min(gdh_counts)}..{max(gdh_counts)}", gdh_rounds,
            ))
        # BD: the count of *full-size* exponentiations is constant (3);
        # totals grow only by the tiny key-assembly powers, so max per
        # party grows exactly linearly with slope 1.
        assert bd_max[16] - bd_max[8] == 8
        # GDH: the last party's burden grows linearly with m and dominates
        # BD's for large m in full-size exponentiations.
        assert gdh_max[16] > gdh_max[4]
        # BD rounds constant (2); GDH rounds = m.
        rows.append(("rounds", "BD: constant 2", "", "GDH: m", ""))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e9_dgka",
        "E9: DGKA per-party modexp (min..max) and rounds — BD vs GDH.2",
        ("m", "BD modexp/party", "BD rounds", "GDH modexp/party", "GDH rounds"),
        rows,
    )
