"""E2 — per-party message counts vs m (Sections 8.1 / 8.2).

Paper claim: "the communication complexity is O(m) per-user in number of
messages".  With the default BD-based DGKA, every participant sends a
constant 4 broadcasts (2 DGKA rounds + tag + (theta, delta)) and receives
4*(m-1) peer messages — O(m) per user, O(m^2) total deliveries on a
point-to-point fabric (a single physical broadcast medium reduces the
latter back to O(m), the paper's wireless motivation).
"""

import pytest

from _tables import emit
from repro import metrics
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy

SWEEP = (2, 3, 4, 6, 8)


def _message_profile(world, policy, m: int):
    metrics.reset()
    run_handshake(world.members[:m], policy, world.rng)
    # Read through the exporter view rather than poking Counters fields;
    # "hs-sent:0" is an extra counter, resolved by the same accessor.
    sent = metrics.value("total", "hs-sent:0")
    received = metrics.value("hs:0", "messages_received")
    return sent, received


def test_e2_messages_linear_in_m(benchmark, bench_scheme1, bench_scheme2):
    results = {}

    def run():
        for name, world, policy in (
            ("scheme1", bench_scheme1, scheme1_policy()),
            ("scheme2", bench_scheme2, scheme2_policy()),
        ):
            results[name] = {m: _message_profile(world, policy, m) for m in SWEEP}

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, profile in results.items():
        for m in SWEEP:
            sent, received = profile[m]
            rows.append((name, m, sent, received, sent + received))
            assert sent == 4  # constant broadcasts per party
            assert received == 4 * (m - 1)  # O(m) receipts
    emit(
        "e2_messages",
        "E2: per-party messages per handshake (paper: O(m) per user)",
        ("scheme", "m", "sent(party 0)", "received(party 0)", "total(party 0)"),
        rows,
    )
