"""E7 — comparison with prior 2-party schemes (Section 10).

The paper positions GCD against Balfanz et al. [3] and Castelluccia et
al. [14] on two axes:

* **credential reuse**: both baselines need one-time pseudonyms — reuse
  makes sessions linkable by a passive observer; GCD credentials are
  multi-show.  We measure the linking rate of an eavesdropper across
  repeated handshakes by the same pair, with and without reuse.
* **latency** per 2-party handshake (research-grade parameters throughout,
  so only relative magnitudes matter).
* **max parties**: the baselines are inherently 2-party; GCD is m-party.
"""

import random
import time

import pytest

from _tables import emit
from repro.baselines import balfanz, ca_oblivious
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.security.adversaries import TranscriptDistinguisher

SESSIONS = 4


def _balfanz_linking(rng):
    group = balfanz.BalfanzGroup("g", rng=rng)
    a = group.admit("a", batch=2 * SESSIONS)
    b = group.admit("b", batch=2 * SESSIONS)
    fresh = [balfanz.handshake(group, a, group, b, rng) for _ in range(SESSIONS)]
    fresh_links = sum(
        balfanz.sessions_linkable(s1, s2)
        for i, s1 in enumerate(fresh) for s2 in fresh[i + 1:]
    )
    reused = [balfanz.handshake(group, a, group, b, rng, reuse_a=True)
              for _ in range(2)]
    reuse_links = sum(
        balfanz.sessions_linkable(s1, s2)
        for i, s1 in enumerate(reused) for s2 in reused[i + 1:]
    )
    return fresh_links, reuse_links


def _ca_linking(rng):
    group = ca_oblivious.CaObliviousGroup("g", rng=rng)
    a = group.admit("a", batch=2 * SESSIONS)
    b = group.admit("b", batch=2 * SESSIONS)
    fresh = [ca_oblivious.handshake(group, a, group, b, rng)
             for _ in range(SESSIONS)]
    fresh_links = sum(
        ca_oblivious.sessions_linkable(s1, s2)
        for i, s1 in enumerate(fresh) for s2 in fresh[i + 1:]
    )
    reused = [ca_oblivious.handshake(group, a, group, b, rng, reuse_a=True)
              for _ in range(2)]
    reuse_links = sum(
        ca_oblivious.sessions_linkable(s1, s2)
        for i, s1 in enumerate(reused) for s2 in reused[i + 1:]
    )
    return fresh_links, reuse_links


def _gcd_linking(world):
    transcripts, keys = [], []
    for _ in range(SESSIONS):
        outcomes = run_handshake(world.members[:2], scheme1_policy(), world.rng)
        transcripts.append(outcomes[0].transcript)
        keys.append(outcomes[0].session_key)
    distinguisher = TranscriptDistinguisher(keys)
    links = sum(
        distinguisher.linked(t1, t2)
        for i, t1 in enumerate(transcripts) for t2 in transcripts[i + 1:]
    )
    return links


def _latency(fn, repeats=3):
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def test_e7_baseline_comparison(benchmark, bench_scheme1):
    rows = []

    def run():
        rng = random.Random(77)
        bf_fresh, bf_reuse = _balfanz_linking(rng)
        ca_fresh, ca_reuse = _ca_linking(rng)
        gcd_links = _gcd_linking(bench_scheme1)

        bal_group = balfanz.BalfanzGroup("lat", rng=rng)
        ba, bb = bal_group.admit("a", 16), bal_group.admit("b", 16)
        t_balfanz = _latency(lambda: balfanz.handshake(bal_group, ba, bal_group, bb, rng))
        ca_group = ca_oblivious.CaObliviousGroup("lat", rng=rng)
        ca_a, ca_b = ca_group.admit("a", 16), ca_group.admit("b", 16)
        t_ca = _latency(lambda: ca_oblivious.handshake(ca_group, ca_a, ca_group, ca_b, rng))
        t_gcd = _latency(lambda: run_handshake(bench_scheme1.members[:2],
                                               scheme1_policy(), bench_scheme1.rng))

        rows.append(("Balfanz [3]", "one-time", bf_fresh, f"{bf_reuse}/1 LINKED",
                     f"{t_balfanz * 1000:.0f} ms", 2))
        rows.append(("CA-oblivious [14]", "one-time", ca_fresh, f"{ca_reuse}/1 LINKED",
                     f"{t_ca * 1000:.0f} ms", 2))
        rows.append(("GCD scheme 1", "reusable", gcd_links, "n/a (reuse is free)",
                     f"{t_gcd * 1000:.0f} ms", "m >= 2"))

        # Paper shape: fresh one-time credentials unlinkable; reuse links
        # the baselines; GCD never links despite always reusing.
        assert bf_fresh == 0 and ca_fresh == 0
        assert bf_reuse >= 1 and ca_reuse >= 1
        assert gcd_links == 0

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e7_baselines",
        "E7: prior-work comparison (Section 10): credentials and linkability",
        ("scheme", "credentials", "links (fresh)", "links (reused)",
         "2-party latency", "max parties"),
        rows,
    )
