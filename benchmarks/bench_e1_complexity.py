"""E1 — per-party modular exponentiations vs m (Sections 8.1 / 8.2).

Paper claim: "a handshake participant computes only O(m) modular
exponentiations", for both instantiations.  We count every modular
exponentiation a single participant performs during a full handshake and
fit the growth: the per-party count must be affine in m (constant + c*m),
never quadratic.
"""

import pytest

from _tables import emit
from repro import metrics
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy

SWEEP = (2, 3, 4, 6, 8)


def _per_party_modexp(world, policy, m: int) -> int:
    metrics.reset()
    run_handshake(world.members[:m], policy, world.rng)
    # Read through the exporter view rather than poking Counters fields.
    return metrics.value("hs:0", "modexp")


def _sweep(world, policy):
    return {m: _per_party_modexp(world, policy, m) for m in SWEEP}


def test_e1_modexp_linear_in_m(benchmark, bench_scheme1, bench_scheme2):
    results = {}

    def run():
        results["scheme1"] = _sweep(bench_scheme1, scheme1_policy())
        results["scheme2"] = _sweep(bench_scheme2, scheme2_policy())

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, counts in results.items():
        slopes = [
            (counts[b] - counts[a]) / (b - a)
            for a, b in zip(SWEEP, SWEEP[1:])
        ]
        for m in SWEEP:
            rows.append((name, m, counts[m], f"{counts[m] / m:.1f}"))
        # O(m) check: the marginal cost per added participant is bounded
        # and does not itself grow with m (affine, not superlinear).
        assert max(slopes) <= 2.5 * min(slopes) + 5, (name, slopes)
        # And it is genuinely linear, not constant-free quadratic:
        # per-party cost divided by m must be *decreasing* (large constant
        # term) or flat — never increasing.
        ratios = [counts[m] / m for m in SWEEP]
        assert all(b <= a * 1.1 for a, b in zip(ratios, ratios[1:])), ratios

    emit(
        "e1_complexity",
        "E1: per-party modular exponentiations per handshake (paper: O(m))",
        ("scheme", "m", "modexp(party 0)", "modexp/m"),
        rows,
    )
