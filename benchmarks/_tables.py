"""Shared table-rendering helper for the benchmark harness.

Every benchmark prints its table (run pytest with ``-s`` to see it live)
and also writes it to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can be cross-checked against regenerated artifacts.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro import metrics

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(name: str, title: str, headers: Sequence[str],
         rows: Iterable[Sequence[object]]) -> str:
    """Render, print and persist one experiment table."""
    text = render_table(title, headers, list(rows))
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    return text


def emit_snapshot(name: str, title: str,
                  snap: Optional[Dict[str, metrics.Counters]] = None,
                  scopes: Optional[Sequence[str]] = None,
                  fields: Sequence[str] = ("modexp", "messages_sent",
                                           "messages_received",
                                           "wall_time")) -> str:
    """Persist a metrics snapshot through the exporters: an aligned text
    table (``results/<name>.txt``) plus the full JSON document
    (``results/<name>.json``) — benchmarks hand the snapshot over instead
    of poking :class:`repro.metrics.Counters` fields."""
    snap = metrics.snapshot() if snap is None else snap
    text = metrics.format_table(snap, scopes=scopes, fields=fields,
                                title=title)
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as handle:
        handle.write(metrics.export_json(snap) + "\n")
    return text
