"""Shared table-rendering helper for the benchmark harness.

Every benchmark prints its table (run pytest with ``-s`` to see it live)
and also writes it to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can be cross-checked against regenerated artifacts.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(name: str, title: str, headers: Sequence[str],
         rows: Iterable[Sequence[object]]) -> str:
    """Render, print and persist one experiment table."""
    text = render_table(title, headers, list(rows))
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    return text
