"""Session-scoped worlds shared by the benchmark harness."""

from __future__ import annotations

import random
import re
import sys
import os
from dataclasses import dataclass
from typing import Dict, List

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro import metrics
from repro.core.framework import GcdFramework
from repro.core.member import GcdMember
from repro.core.scheme1 import create_scheme1
from repro.core.scheme2 import create_scheme2

MAX_PARTIES = 8

METRICS_DIR = os.path.join(os.path.dirname(__file__), "results", "metrics")


@pytest.fixture(autouse=True)
def metrics_artifact(request):
    """Persist each benchmark's final metrics snapshot through the JSON
    exporter (``results/metrics/<test>.json``) so counter regressions show
    up as reviewable artifacts, not just assertion failures."""
    metrics.reset()
    yield
    os.makedirs(METRICS_DIR, exist_ok=True)
    safe = re.sub(r"[^\w.-]+", "_", request.node.name)
    metrics.write_json(os.path.join(METRICS_DIR, f"{safe}.json"))


@dataclass
class BenchWorld:
    framework: GcdFramework
    members: List[GcdMember]
    rng: random.Random


def _build(factory, group_id: str, count: int, seed: int) -> BenchWorld:
    rng = random.Random(seed)
    framework = factory(group_id, rng=rng)
    members = [framework.admit_member(f"user-{i}", rng) for i in range(count)]
    return BenchWorld(framework=framework, members=members, rng=rng)


@pytest.fixture(scope="session")
def bench_scheme1() -> BenchWorld:
    return _build(create_scheme1, "bench-s1", MAX_PARTIES, 91)


@pytest.fixture(scope="session")
def bench_scheme2() -> BenchWorld:
    return _build(create_scheme2, "bench-s2", MAX_PARTIES, 92)


@pytest.fixture(scope="session")
def bench_other_group() -> BenchWorld:
    return _build(create_scheme1, "bench-other", 4, 93)
