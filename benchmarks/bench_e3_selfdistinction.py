"""E3 — self-distinction: scheme 2 detects multi-role rogues, scheme 1
does not (Sections 1.1, 8.2; Theorem 3 vs Theorem 1).

The rogue member plays r in {2, 3} of the m slots.  The table reports the
honest participants' detection rate under each instantiation: the paper's
prediction is 0% detection for scheme 1 (no self-distinction) and 100%
for scheme 2 (duplicate T6 tags under the common T7)."""

import pytest

from _tables import emit
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy

TRIALS = 3


def _detection_rate(world, policy, roles: int) -> float:
    honest = world.members[:2]
    rogue = world.members[2]
    detected = 0
    for _ in range(TRIALS):
        lineup = honest + [rogue] * roles
        outcomes = run_handshake(lineup, policy, world.rng)
        if not any(o.success for o in outcomes[:2]):
            detected += 1
    return detected / TRIALS


def test_e3_self_distinction(benchmark, bench_scheme1, bench_scheme2):
    rows = []

    def run():
        for roles in (2, 3):
            s1 = _detection_rate(bench_scheme1, scheme1_policy(), roles)
            s2 = _detection_rate(bench_scheme2, scheme2_policy(), roles)
            rows.append((roles, 2 + roles, f"{s1:.0%}", f"{s2:.0%}"))
            assert s1 == 0.0  # scheme 1: attack invisible
            assert s2 == 1.0  # scheme 2: always caught

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e3_selfdistinction",
        "E3: multi-role rogue detection rate (paper: scheme1 never, scheme2 always)",
        ("rogue roles", "m", "scheme1 detection", "scheme2 detection"),
        rows,
    )
