"""Service throughput — concurrent handshake rooms over loopback TCP.

The rendezvous server (repro.service) must sustain many rooms at once
without cross-room interference: every room runs under its own metrics
Recorder and must show exactly the paper's per-party message profile
(4 broadcasts sent, 4*(m-1) received) no matter how many neighbours are
hammering the same server.  Reported per concurrency level: wall time,
rooms/sec, and p50/p95 room-completion latency.

A STATUS poller runs *during* each burst (docs/OBSERVABILITY.md): live
introspection must work while the relay is under load, and the final
snapshot provides the server-side ``svc:relay-latency`` percentiles
reported in the second table.

The final leg re-runs the 20-room burst with the accel bridge engaged on
both sides (``ClientConfig.offload`` / ``ServerConfig.offload``): crypto
and codec work leaves the event loop, but every per-room assertion in
``_burst`` — the paper's 4 / 4*(m-1) message profile — must hold
unchanged, and the relay-latency percentiles are reported alongside the
non-accel numbers (docs/PERFORMANCE.md).
"""

import asyncio
import time

from _tables import emit
from repro import accel, metrics
from repro.accel import bridge as accel_bridge
from repro.core.scheme1 import scheme1_policy
from repro.service import (
    ClientConfig,
    RendezvousServer,
    ServerConfig,
    query_status,
    run_room,
)

SWEEP = (5, 10, 20)
ROOM_SIZE = 2


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


async def _one_room(server, members, policy, label, recorder, offload=False):
    with metrics.using(recorder):
        config = ClientConfig(port=server.port, room=label, deadline=120.0,
                              offload=offload)
        started = time.perf_counter()
        outcomes = await run_room(members, config, policy)
        return outcomes, time.perf_counter() - started


async def _poll_status(port, live):
    """Hammer the live-introspection endpoint while rooms run."""
    while True:
        try:
            status = await query_status("127.0.0.1", port, timeout=10.0)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            await asyncio.sleep(0.02)
            continue
        live["polls"] += 1
        live["peak_active"] = max(live["peak_active"],
                                  status["rooms"]["active"])
        await asyncio.sleep(0.02)


async def _burst(members, policy, n_rooms, offload=False):
    """Run ``n_rooms`` rooms concurrently under a live STATUS poller;
    return (wall, latencies, live-introspection stats, final status)."""
    server_rec = metrics.Recorder()   # server-side svc:* books, per level
    live = {"polls": 0, "peak_active": 0}
    with metrics.using(server_rec):
        async with RendezvousServer(
                ServerConfig(handshake_timeout=120.0,
                             offload=offload)) as server:
            recorders = [metrics.Recorder() for _ in range(n_rooms)]
            poller = asyncio.ensure_future(_poll_status(server.port, live))
            started = time.perf_counter()
            results = await asyncio.gather(*[
                _one_room(server, members, policy, f"bench-{i}", recorders[i],
                          offload=offload)
                for i in range(n_rooms)
            ])
            wall = time.perf_counter() - started
            final_status = await query_status("127.0.0.1", server.port,
                                              timeout=10.0)
            poller.cancel()
    completed = server.room_outcomes()
    assert len(completed) == n_rooms
    assert all(v == "completed" for v in completed.values())
    # Live introspection worked during the burst and saw the load.
    assert live["polls"] > 0
    assert final_status["counters"]["svc:rooms-completed"] == n_rooms
    latencies = []
    for (outcomes, latency), recorder in zip(results, recorders):
        assert all(o.success for o in outcomes)
        latencies.append(latency)
        # Per-room Recorder isolation: under full concurrency every room
        # still shows exactly the protocol's per-party profile — any
        # cross-room bleed would inflate these counts.
        snap = recorder.snapshot()
        for i in range(ROOM_SIZE):
            counters = snap[f"hs:{i}"]
            assert counters.messages_sent == 4
            assert counters.messages_received == 4 * (ROOM_SIZE - 1)
    return wall, sorted(latencies), live, final_status


def test_service_throughput(benchmark, bench_scheme1):
    members = bench_scheme1.members[:ROOM_SIZE]
    policy = scheme1_policy()
    results = {}

    offload_rooms = max(SWEEP)
    offload_result = {}

    def run():
        for n_rooms in SWEEP:
            results[n_rooms] = asyncio.run(
                asyncio.wait_for(_burst(members, policy, n_rooms), 300))
        # Accel-bridge leg: same burst at peak concurrency with crypto
        # and codec work offloaded on both client and server sides.
        accel.enable()
        try:
            offload_result["burst"] = asyncio.run(asyncio.wait_for(
                _burst(members, policy, offload_rooms, offload=True), 300))
        finally:
            accel_bridge.shutdown()
            accel.disable()

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    obs_rows = []
    for n_rooms in SWEEP:
        wall, latencies, live, status = results[n_rooms]
        rows.append((
            n_rooms, ROOM_SIZE, f"{wall:.3f}",
            f"{n_rooms / wall:.1f}",
            f"{_percentile(latencies, 0.50):.3f}",
            f"{_percentile(latencies, 0.95):.3f}",
        ))
        relay = status["histograms"].get("svc:relay-latency",
                                         {"count": 0, "p50": 0.0, "p99": 0.0})
        obs_rows.append((
            n_rooms, live["polls"], live["peak_active"],
            relay["count"],
            f"{relay['p50'] * 1e3:.3f}", f"{relay['p99'] * 1e3:.3f}",
        ))
    assert max(SWEEP) >= 20      # the acceptance bar: 20 concurrent rooms
    emit(
        "service_throughput",
        "Service: concurrent rooms over loopback TCP (per-room metrics isolated)",
        ("rooms", "m", "wall(s)", "rooms/s", "p50(s)", "p95(s)"),
        rows,
    )
    emit(
        "service_introspection",
        "Service: live STATUS introspection during the bursts",
        ("rooms", "polls", "peak-active", "relayed",
         "relay-p50(ms)", "relay-p99(ms)"),
        obs_rows,
    )

    accel_rows = []
    for mode, (wall, latencies, _, status) in (
            ("inline", results[offload_rooms]),
            ("offload", offload_result["burst"])):
        relay = status["histograms"].get("svc:relay-latency",
                                         {"count": 0, "p50": 0.0, "p99": 0.0})
        accel_rows.append((
            mode, offload_rooms, f"{wall:.3f}",
            f"{offload_rooms / wall:.1f}",
            f"{_percentile(latencies, 0.50):.3f}",
            f"{_percentile(latencies, 0.95):.3f}",
            f"{relay['p50'] * 1e3:.3f}", f"{relay['p99'] * 1e3:.3f}",
        ))
    # The offload leg saw the bridge on the server side.
    offload_status = offload_result["burst"][3]
    assert offload_status["accel"]["bridge"]["tasks"] > 0
    emit(
        "service_accel_offload",
        f"Service: {offload_rooms}-room burst, event loop vs accel-bridge "
        "offload (docs/PERFORMANCE.md)",
        ("mode", "rooms", "wall(s)", "rooms/s", "room-p50(s)", "room-p95(s)",
         "relay-p50(ms)", "relay-p99(ms)"),
        accel_rows,
    )
