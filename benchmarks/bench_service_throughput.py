"""Service throughput — concurrent handshake rooms over loopback TCP.

The rendezvous server (repro.service) must sustain many rooms at once
without cross-room interference: every room runs under its own metrics
Recorder and must show exactly the paper's per-party message profile
(4 broadcasts sent, 4*(m-1) received) no matter how many neighbours are
hammering the same server.  Reported per concurrency level: wall time,
rooms/sec, and p50/p95 room-completion latency.
"""

import asyncio
import time

from _tables import emit
from repro import metrics
from repro.core.scheme1 import scheme1_policy
from repro.service import ClientConfig, RendezvousServer, ServerConfig, run_room

SWEEP = (5, 10, 20)
ROOM_SIZE = 2


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


async def _one_room(server, members, policy, label, recorder):
    with metrics.using(recorder):
        config = ClientConfig(port=server.port, room=label, deadline=120.0)
        started = time.perf_counter()
        outcomes = await run_room(members, config, policy)
        return outcomes, time.perf_counter() - started


async def _burst(members, policy, n_rooms):
    """Run ``n_rooms`` rooms concurrently; return (wall, latencies)."""
    async with RendezvousServer(ServerConfig(handshake_timeout=120.0)) as server:
        recorders = [metrics.Recorder() for _ in range(n_rooms)]
        started = time.perf_counter()
        results = await asyncio.gather(*[
            _one_room(server, members, policy, f"bench-{i}", recorders[i])
            for i in range(n_rooms)
        ])
        wall = time.perf_counter() - started
    completed = server.room_outcomes()
    assert len(completed) == n_rooms
    assert all(v == "completed" for v in completed.values())
    latencies = []
    for (outcomes, latency), recorder in zip(results, recorders):
        assert all(o.success for o in outcomes)
        latencies.append(latency)
        # Per-room Recorder isolation: under full concurrency every room
        # still shows exactly the protocol's per-party profile — any
        # cross-room bleed would inflate these counts.
        snap = recorder.snapshot()
        for i in range(ROOM_SIZE):
            counters = snap[f"hs:{i}"]
            assert counters.messages_sent == 4
            assert counters.messages_received == 4 * (ROOM_SIZE - 1)
    return wall, sorted(latencies)


def test_service_throughput(benchmark, bench_scheme1):
    members = bench_scheme1.members[:ROOM_SIZE]
    policy = scheme1_policy()
    results = {}

    def run():
        for n_rooms in SWEEP:
            results[n_rooms] = asyncio.run(
                asyncio.wait_for(_burst(members, policy, n_rooms), 300))

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for n_rooms in SWEEP:
        wall, latencies = results[n_rooms]
        rows.append((
            n_rooms, ROOM_SIZE, f"{wall:.3f}",
            f"{n_rooms / wall:.1f}",
            f"{_percentile(latencies, 0.50):.3f}",
            f"{_percentile(latencies, 0.95):.3f}",
        ))
    assert max(SWEEP) >= 20      # the acceptance bar: 20 concurrent rooms
    emit(
        "service_throughput",
        "Service: concurrent rooms over loopback TCP (per-room metrics isolated)",
        ("rooms", "m", "wall(s)", "rooms/s", "p50(s)", "p95(s)"),
        rows,
    )
