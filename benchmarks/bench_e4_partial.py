"""E4 — partially-successful handshakes (Section 7 extension, footnote 2).

The paper's example: 5 parties, 2 from group A and 3 from group B; the
desired outcome is that both cliques complete their handshakes and learn
their subset sizes (2 and 3).  We sweep several mixed configurations and
check that every participant discovers exactly its same-group subset."""

import pytest

from _tables import emit
from repro.core.handshake import run_handshake
from repro.core.partial import subsets, subsets_are_consistent
from repro.core.scheme1 import scheme1_policy


def test_e4_partial_success(benchmark, bench_scheme1, bench_other_group):
    rows = []

    def run():
        configurations = [
            ("2A+3B (paper example)", 2, 3),
            ("3A+2B", 3, 2),
            ("2A+2B", 2, 2),
            ("4A+1B", 4, 1),
        ]
        for label, n_a, n_b in configurations:
            lineup = bench_scheme1.members[:n_a] + bench_other_group.members[:n_b]
            outcomes = run_handshake(
                lineup, scheme1_policy(partial_success=True), bench_scheme1.rng
            )
            found = subsets(outcomes)
            expected = set()
            if n_a > 1:
                expected.add(frozenset(range(n_a)))
            if n_b > 1:
                expected.add(frozenset(range(n_a, n_a + n_b)))
            assert set(found) == expected, (label, found)
            assert subsets_are_consistent(outcomes)
            sizes = sorted(len(s) for s in found)
            rows.append((label, n_a + n_b, len(found), sizes))

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e4_partial",
        "E4: partially-successful handshakes (paper: every same-group clique completes)",
        ("configuration", "m", "cliques found", "clique sizes"),
        rows,
    )
