"""E8 — CGKD substrate costs (Section 5; [33] LKH, [26] NNL).

Claims reproduced:

* LKH rekey broadcasts O(log n) ciphertexts per Leave vs the star
  baseline's O(n); member storage O(log n) vs O(1).
* NNL subset difference: header size <= 2r - 1 for r revocations
  (independent of n); complete subtree: O(r log(n/r)); SD user storage
  O(log^2 n) vs CS's O(log n)."""

import math
import random

import pytest

from _tables import emit
from repro.cgkd.lkh import LkhController, LkhMember
from repro.cgkd.nnl import CompleteSubtreeScheme, SubsetDifferenceScheme
from repro.cgkd.star import StarController


def _lkh_costs(n: int, rng) -> tuple:
    gc = LkhController(2, rng)
    members = {}
    for i in range(n):
        welcome, message = gc.join(f"u{i}")
        for m in members.values():
            m.rekey(message)
        members[f"u{i}"] = LkhMember(welcome)
    leave_msg = gc.leave(f"u{n // 2}")
    storage = members[f"u{0}"].key_count()
    return leave_msg.size, storage


def _star_costs(n: int, rng) -> tuple:
    gc = StarController(rng)
    for i in range(n):
        gc.join(f"u{i}")
    leave_msg = gc.leave(f"u{n // 2}")
    return leave_msg.size, 2


def test_e8a_rekey_cost_tree_vs_star(benchmark):
    rows = []

    def run():
        rng = random.Random(81)
        for n in (16, 64, 256):
            lkh_size, lkh_storage = _lkh_costs(n, rng)
            star_size, star_storage = _star_costs(n, rng)
            bound = 2 * math.ceil(math.log2(n))
            rows.append((n, star_size, lkh_size, bound, star_storage, lkh_storage))
            assert lkh_size <= bound
            assert star_size == n - 1
            # Crossover shape: the tree wins for every n past trivial sizes.
            assert lkh_size < star_size

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e8a_cgkd_rekey",
        "E8a: Leave-rekey ciphertexts and member storage — star O(n) vs LKH O(log n)",
        ("n", "star rekey", "LKH rekey", "2*log2(n) bound",
         "star keys/member", "LKH keys/member"),
        rows,
    )


def test_e8b_nnl_header_sizes(benchmark):
    rows = []

    def run():
        rng = random.Random(82)
        n = 256
        cs = CompleteSubtreeScheme(n, rng)
        sd = SubsetDifferenceScheme(n, rng)
        leaves = list(sd.leaves())
        for r in (1, 2, 4, 8, 16, 32):
            revoked = set(random.Random(r).sample(leaves, r))
            cs_header = len(cs.cover(revoked))
            sd_header = len(sd.cover(revoked))
            sd_bound = max(1, 2 * r - 1)
            rows.append((n, r, cs_header, sd_header, sd_bound))
            assert sd_header <= sd_bound
            # The NNL headline: SD beats CS as r grows.
            if r >= 4:
                assert sd_header <= cs_header

        cs_storage = len(cs.user_keys(leaves[0]))
        sd_storage = len(sd.user_keys(leaves[0]))
        log_n = int(math.log2(n))
        rows.append((n, "storage/user", cs_storage, sd_storage,
                     f"CS ~log n = {log_n + 1}, SD ~log^2 n / 2"))
        assert cs_storage == log_n + 1
        assert sd_storage == log_n * (log_n + 1) // 2 + 1

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e8b_nnl_headers",
        "E8b: NNL header sizes (n=256) — SD <= 2r-1, CS O(r log(n/r))",
        ("n", "r", "CS header", "SD header", "SD bound / note"),
        rows,
    )
