"""Cluster burst — multi-shard rendezvous vs the single-process server.

Three legs, same seeded rooms (m=2) throughout:

* ``single``   — a burst of rooms on one in-process RendezvousServer;
  the baseline the cluster is measured against.
* ``cluster``  — the same burst through a 2-shard ClusterRouter: every
  byte crosses the router splice and lands on one of two real worker
  processes.  The router is a transparent relay, so each room must still
  show the paper's per-party message profile (4 broadcasts sent,
  4*(m-1) received) — asserted per room, exactly as in the
  single-process throughput bench.
* ``failover`` — the cluster burst again, but one shard is SIGKILLed
  mid-flight.  The bar is the PR's acceptance criterion: every client
  outcome is a success or an *explicitly retryable* failure — zero
  non-retryable casualties, zero hangs — and the router keeps answering
  aggregated STATUS afterwards.

Each room runs through :func:`repro.load.run_timed_room`, which stamps
arrival / first-WELCOME / admission / completion instants relative to the
leg's epoch into the same per-room schema the open-loop driver
(``benchmarks/bench_load.py``) emits — so closed-loop burst latencies and
open-loop sustained-load latencies are directly comparable, room by room.

Artifacts: ``results/cluster_burst.txt`` (table) and ``BENCH_cluster.json``
at the repo root (CI uploads it; see .github/workflows/ci.yml).
"""

import asyncio
import json
import os
import time

from _tables import emit
from repro import metrics
from repro.cluster import ClusterConfig, ClusterRouter
from repro.core.scheme1 import scheme1_policy
from repro.load import HandshakeModel, run_timed_room
from repro.service import (
    ClientConfig,
    RendezvousServer,
    ServerConfig,
    query_status,
)

ROOMS = 12
ROOM_SIZE = 2
SHARDS = 2
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_cluster.json")

#: Validates every completed room's books (modexp/message counts exact,
#: bytes within tolerance) — strictly stronger than the old per-party
#: message-profile assertion, and shared with the open-loop harness.
MODEL = HandshakeModel("1")


async def _one_room(port, members, policy, label, *, epoch, deadline=120.0):
    """One room via run_timed_room: isolated Recorder, lifecycle
    timestamps, and model-validated books (so cross-room/cross-shard
    interference can't hide)."""
    config = ClientConfig(port=port, room=label, deadline=deadline,
                          backoff_base=0.05, backoff_max=0.5)
    result = await run_timed_room(members, config, policy, epoch=epoch,
                                  model=MODEL)
    assert not result.mismatches, \
        f"{label}: books diverge from the model: {result.mismatches}"
    return result


async def _burst(port, members, policy, prefix, deadline=120.0):
    epoch = time.perf_counter()
    jobs = [_one_room(port, members, policy, f"{prefix}-{i}",
                      epoch=epoch, deadline=deadline)
            for i in range(ROOMS)]
    results = await asyncio.gather(*jobs)
    wall = time.perf_counter() - epoch
    return results, wall


async def _single_leg(members, policy):
    async with RendezvousServer(ServerConfig(handshake_timeout=120.0)) \
            as server:
        results, wall = await _burst(server.port, members, policy, "single")
    assert all(r.outcome == "completed" for r in results)
    return results, wall


async def _cluster_leg(members, policy):
    config = ClusterConfig(shards=SHARDS, heartbeat_interval=0.1,
                           handshake_timeout=120.0)
    async with ClusterRouter(config) as router:
        results, wall = await _burst(router.port, members, policy, "cluster")
        await asyncio.sleep(0.4)     # let heartbeats carry the final books
        status = await query_status("127.0.0.1", router.port)
    assert all(r.outcome == "completed" for r in results)
    assert status["outcomes"].get("completed", 0) == ROOMS
    return results, wall, status


async def _failover_leg(members, policy):
    config = ClusterConfig(shards=SHARDS, heartbeat_interval=0.1,
                           handshake_timeout=120.0)
    recorder = metrics.Recorder()
    with metrics.using(recorder):
        async with ClusterRouter(config) as router:
            epoch = time.perf_counter()
            jobs = [asyncio.ensure_future(_one_room(
                        router.port, members, policy, f"failover-{i}",
                        epoch=epoch, deadline=30.0))
                    for i in range(ROOMS)]
            await asyncio.sleep(0.15)          # burst underway on both shards
            started = time.perf_counter()
            router.kill_shard(0)
            results = await asyncio.gather(*jobs)
            wall = time.perf_counter() - started
            status = await query_status("127.0.0.1", router.port)
    successes = sum(r.successes for r in results)
    retryable = sum(r.retryable_failures for r in results)
    casualties = sum(r.nonretryable_failures for r in results)
    assert casualties == 0, \
        f"{casualties} outcomes were neither success nor retryable"
    assert status["cluster"]["states"].get("dead") == [0]
    return {
        "wall_after_kill_s": round(wall, 6),
        "successes": successes,
        "retryable_failures": retryable,
        "nonretryable_failures": casualties,
        "replacements": recorder.total().extra.get(
            "svc-cluster:replacements", 0),
        "shard_states": status["cluster"]["states"],
        "rooms": [r.as_dict() for r in results],
    }


def test_cluster_burst(benchmark, bench_scheme1):
    members = bench_scheme1.members[:ROOM_SIZE]
    policy = scheme1_policy()
    report = {}

    def run():
        single_rooms, single_wall = asyncio.run(
            _single_leg(members, policy))
        report["single_wall_s"] = single_wall
        report["single_rooms"] = single_rooms
        cluster_rooms, cluster_wall, status = asyncio.run(
            _cluster_leg(members, policy))
        report["cluster_wall_s"] = cluster_wall
        report["cluster_rooms"] = cluster_rooms
        report["cluster_status"] = status
        report["failover"] = asyncio.run(_failover_leg(members, policy))

    benchmark.pedantic(run, rounds=1, iterations=1)

    single_wall = report["single_wall_s"]
    cluster_wall = report["cluster_wall_s"]
    failover = report["failover"]
    status = report["cluster_status"]
    shard_rooms = {
        shard_id: (line["rooms"] or {}).get("closed", 0)
        for shard_id, line in status["shards"].items()
    }

    rows = [
        ("single", 1, ROOMS, f"{single_wall:.3f}",
         f"{ROOMS / single_wall:.1f}", "-"),
        ("cluster", SHARDS, ROOMS, f"{cluster_wall:.3f}",
         f"{ROOMS / cluster_wall:.1f}",
         "/".join(str(shard_rooms.get(str(i), 0)) for i in range(SHARDS))),
        ("failover", SHARDS, ROOMS, f"{failover['wall_after_kill_s']:.3f}",
         f"{failover['successes']}ok+{failover['retryable_failures']}retry",
         str(failover["shard_states"])),
    ]
    emit(
        "cluster_burst",
        f"Cluster: {ROOMS}-room burst (m={ROOM_SIZE}), single vs "
        f"{SHARDS}-shard vs kill-one-shard (books asserted per room)",
        ("leg", "shards", "rooms", "wall(s)", "rooms/s", "per-shard"),
        rows,
    )

    doc = {
        "rooms": ROOMS,
        "room_size": ROOM_SIZE,
        "shards": SHARDS,
        "single_wall_s": round(single_wall, 6),
        "cluster_wall_s": round(cluster_wall, 6),
        "cluster_overhead_x": round(cluster_wall / single_wall, 4),
        "rooms_per_shard": shard_rooms,
        "books_model": "validated per room against repro.load.model "
                       "(modexp/message counts exact, bytes within "
                       "tolerance)",
        "single_rooms": [r.as_dict() for r in report["single_rooms"]],
        "cluster_rooms": [r.as_dict() for r in report["cluster_rooms"]],
        "failover": failover,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
