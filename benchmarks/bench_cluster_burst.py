"""Cluster burst — multi-shard rendezvous vs the single-process server.

Three legs, same seeded rooms (m=2) throughout:

* ``single``   — a burst of rooms on one in-process RendezvousServer;
  the baseline the cluster is measured against.
* ``cluster``  — the same burst through a 2-shard ClusterRouter: every
  byte crosses the router splice and lands on one of two real worker
  processes.  The router is a transparent relay, so each room must still
  show the paper's per-party message profile (4 broadcasts sent,
  4*(m-1) received) — asserted per room, exactly as in the
  single-process throughput bench.
* ``failover`` — the cluster burst again, but one shard is SIGKILLed
  mid-flight.  The bar is the PR's acceptance criterion: every client
  outcome is a success or an *explicitly retryable* failure — zero
  non-retryable casualties, zero hangs — and the router keeps answering
  aggregated STATUS afterwards.

Artifacts: ``results/cluster_burst.txt`` (table) and ``BENCH_cluster.json``
at the repo root (CI uploads it; see .github/workflows/ci.yml).
"""

import asyncio
import json
import os
import time

from _tables import emit
from repro import metrics
from repro.cluster import ClusterConfig, ClusterRouter
from repro.core.scheme1 import scheme1_policy
from repro.service import (
    ClientConfig,
    RendezvousServer,
    ServerConfig,
    query_status,
    run_room,
)

ROOMS = 12
ROOM_SIZE = 2
SHARDS = 2
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_cluster.json")


async def _one_room(port, members, policy, label, deadline=120.0):
    """One room under its own Recorder; returns (outcomes, latency, books
    are asserted here so cross-room/cross-shard interference can't hide)."""
    recorder = metrics.Recorder()
    with metrics.using(recorder):
        config = ClientConfig(port=port, room=label, deadline=deadline,
                              backoff_base=0.05, backoff_max=0.5)
        started = time.perf_counter()
        outcomes = await run_room(members, config, policy)
        latency = time.perf_counter() - started
    if all(o.success for o in outcomes):
        snapshot = recorder.snapshot()
        for i in range(len(members)):
            counters = snapshot[f"hs:{i}"]
            assert counters.messages_sent == 4, \
                f"{label}: party {i} sent {counters.messages_sent} != 4"
            assert counters.messages_received == 4 * (len(members) - 1), \
                f"{label}: party {i} received {counters.messages_received}"
    return outcomes, latency


async def _burst(port, members, policy, prefix, deadline=120.0):
    jobs = [_one_room(port, members, policy, f"{prefix}-{i}",
                      deadline=deadline)
            for i in range(ROOMS)]
    started = time.perf_counter()
    results = await asyncio.gather(*jobs)
    wall = time.perf_counter() - started
    return results, wall


async def _single_leg(members, policy):
    async with RendezvousServer(ServerConfig(handshake_timeout=120.0)) \
            as server:
        results, wall = await _burst(server.port, members, policy, "single")
    assert all(o.success for outcomes, _ in results for o in outcomes)
    return wall


async def _cluster_leg(members, policy):
    config = ClusterConfig(shards=SHARDS, heartbeat_interval=0.1,
                           handshake_timeout=120.0)
    async with ClusterRouter(config) as router:
        results, wall = await _burst(router.port, members, policy, "cluster")
        await asyncio.sleep(0.4)     # let heartbeats carry the final books
        status = await query_status("127.0.0.1", router.port)
    assert all(o.success for outcomes, _ in results for o in outcomes)
    assert status["outcomes"].get("completed", 0) == ROOMS
    return wall, status


async def _failover_leg(members, policy):
    config = ClusterConfig(shards=SHARDS, heartbeat_interval=0.1,
                           handshake_timeout=120.0)
    recorder = metrics.Recorder()
    with metrics.using(recorder):
        async with ClusterRouter(config) as router:
            jobs = [asyncio.ensure_future(_one_room(
                        router.port, members, policy, f"failover-{i}",
                        deadline=30.0))
                    for i in range(ROOMS)]
            await asyncio.sleep(0.15)          # burst underway on both shards
            started = time.perf_counter()
            router.kill_shard(0)
            results = await asyncio.gather(*jobs)
            wall = time.perf_counter() - started
            status = await query_status("127.0.0.1", router.port)
    flat = [o for outcomes, _ in results for o in outcomes]
    successes = sum(o.success for o in flat)
    retryable = sum((not o.success) and o.retryable for o in flat)
    casualties = sum((not o.success) and (not o.retryable) for o in flat)
    assert casualties == 0, \
        f"{casualties} outcomes were neither success nor retryable"
    assert status["cluster"]["states"].get("dead") == [0]
    return {
        "wall_after_kill_s": round(wall, 6),
        "successes": successes,
        "retryable_failures": retryable,
        "nonretryable_failures": casualties,
        "replacements": recorder.total().extra.get(
            "svc-cluster:replacements", 0),
        "shard_states": status["cluster"]["states"],
    }


def test_cluster_burst(benchmark, bench_scheme1):
    members = bench_scheme1.members[:ROOM_SIZE]
    policy = scheme1_policy()
    report = {}

    def run():
        report["single_wall_s"] = asyncio.run(_single_leg(members, policy))
        cluster_wall, status = asyncio.run(_cluster_leg(members, policy))
        report["cluster_wall_s"] = cluster_wall
        report["cluster_status"] = status
        report["failover"] = asyncio.run(_failover_leg(members, policy))

    benchmark.pedantic(run, rounds=1, iterations=1)

    single_wall = report["single_wall_s"]
    cluster_wall = report["cluster_wall_s"]
    failover = report["failover"]
    status = report["cluster_status"]
    shard_rooms = {
        shard_id: (line["rooms"] or {}).get("closed", 0)
        for shard_id, line in status["shards"].items()
    }

    rows = [
        ("single", 1, ROOMS, f"{single_wall:.3f}",
         f"{ROOMS / single_wall:.1f}", "-"),
        ("cluster", SHARDS, ROOMS, f"{cluster_wall:.3f}",
         f"{ROOMS / cluster_wall:.1f}",
         "/".join(str(shard_rooms.get(str(i), 0)) for i in range(SHARDS))),
        ("failover", SHARDS, ROOMS, f"{failover['wall_after_kill_s']:.3f}",
         f"{failover['successes']}ok+{failover['retryable_failures']}retry",
         str(failover["shard_states"])),
    ]
    emit(
        "cluster_burst",
        f"Cluster: {ROOMS}-room burst (m={ROOM_SIZE}), single vs "
        f"{SHARDS}-shard vs kill-one-shard (books asserted per room)",
        ("leg", "shards", "rooms", "wall(s)", "rooms/s", "per-shard"),
        rows,
    )

    doc = {
        "rooms": ROOMS,
        "room_size": ROOM_SIZE,
        "shards": SHARDS,
        "single_wall_s": round(single_wall, 6),
        "cluster_wall_s": round(cluster_wall, 6),
        "cluster_overhead_x": round(cluster_wall / single_wall, 4),
        "rooms_per_shard": shard_rooms,
        "message_profile": "asserted (4 sent, 4*(m-1) received per party)",
        "failover": failover,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
