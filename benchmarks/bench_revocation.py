"""Revocation churn bench — batched epochs vs sequential, lazy refresh.

Four legs, all verdicts on **exact counted books** (never wall-clock):

* ``books``  — one manager, k revocations, measured twice at the GSIG
  layer: k sequential ``revoke`` calls vs one ``revoke_batch``.  The
  manager must pay exactly k vs exactly 1 trapdoor modexps, a surviving
  member exactly 2k vs exactly 2 witness-update modexps, and both
  survivors' witnesses must verify.  Measured counts must equal the
  closed forms in :mod:`repro.revocation.model` — drift fails the bench.
* ``lazy``   — a member admitted through the :class:`RevocationService`
  sleeps through >= 10 real sealed epochs (joins interleaved with
  revocation batches), then refreshes: the delta-log replay must cost at
  most 3 modexps and yield a witness ``verify_witness`` accepts; a
  second sleeper past the horizon must get a valid manager-reissued
  witness.
* ``tiers``  — counter-only churn simulation at 1e4 / 1e5 / 1e6 members
  (the closed forms just validated, multiplied out): batched must beat
  sequential on total modexps at every tier.
* ``guard``  — a post-churn handshake's per-party books must match the
  symbolic capacity model exactly (same E1/E2 numbers as the seed):
  revocation machinery must not perturb the handshake hot path.

Artifacts: ``results/revocation.txt`` and ``BENCH_revocation.json`` at
the repo root (CI's revocation-smoke job uploads and asserts on it).
"""

import json
import os
import random

from _tables import emit
from repro import metrics
from repro.core.framework import GcdFramework
from repro.gsig.acjt import AcjtManager
from repro.load.model import HandshakeModel
from repro.revocation import RevocationService
from repro.revocation.model import (
    ChurnSpec,
    manager_modexps,
    member_update_modexps,
    simulate_churn,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_revocation.json")

K = 6                # revocations per measured epoch
LAZY_ROUNDS = 5      # churn rounds slept through (3 epochs each: 2 joins
                     # + 1 sealed revocation batch => 15 missed epochs)
SEED = 90


def _measured(fn) -> int:
    """Run ``fn`` under a detached recorder; return its modexp total."""
    with metrics.detached() as recorder:
        fn()
    return recorder.total().modexp


def _revocation_books(seed: int, batched: bool):
    """One population, K revocations; exact manager and survivor books."""
    rng = random.Random(seed)
    manager = AcjtManager("tiny", rng)
    survivor, _ = manager.join("survivor", rng)
    doomed = [f"d{i}" for i in range(K)]
    for uid in doomed:
        credential, update = manager.join(uid, rng)
        survivor.apply_update(update)
    assert survivor.witness_is_current()

    updates = []
    if batched:
        mgr_modexp = _measured(
            lambda: updates.append(manager.revoke_batch(doomed)))
    else:
        mgr_modexp = _measured(
            lambda: updates.extend(manager.revoke(uid) for uid in doomed))

    def apply_all():
        for update in updates:
            survivor.apply_update(update)

    member_modexp = _measured(apply_all)
    assert survivor.witness_is_current(), "survivor witness broken"
    return {
        "manager_modexps": mgr_modexp,
        "member_modexps": member_modexp,
        "updates_broadcast": len(updates),
        "witness_valid": survivor.witness_is_current(),
    }


def _lazy_leg(seed: int):
    """Real sealed epochs at service level; sleeper refresh books."""
    rng = random.Random(seed)
    framework = GcdFramework.create("bench-rev", gsig_kind="acjt",
                                    gsig_profile="tiny", rng=rng)
    service = RevocationService(framework, horizon=10 * LAZY_ROUNDS,
                                register=False)
    for i in range(4):
        service.admit(f"base{i}", rng)
    sleeper = service.admit("sleeper", rng, enroll=False)
    sleeper_epoch = sleeper.acc_epoch
    for i in range(LAZY_ROUNDS):
        service.admit(f"churn{i}", rng)
        service.admit(f"keep{i}", rng)
        service.revoke(f"churn{i}")
        service.seal_epoch()
    missed = service.epoch - sleeper_epoch
    assert missed >= 10, f"only {missed} missed epochs staged"

    results = {}
    with metrics.detached() as recorder:
        results["result"] = service.refresh(sleeper)
    results["missed_epochs"] = missed
    results["member_modexps"] = recorder.total().modexp
    results["witness_valid"] = sleeper.witness_is_current()

    # Past-horizon sleeper: manager-assisted reissue must also verify.
    deep = service.admit("deep", rng, enroll=False)
    for i in range(service.horizon + 2):
        service.admit(f"wave{i}", rng)
    with metrics.detached() as reissue_rec:
        results["deep_result"] = service.refresh(deep)
    results["deep_manager_modexps"] = reissue_rec.total().modexp
    results["deep_witness_valid"] = deep.witness_is_current()
    return results


def _handshake_guard(seed: int):
    """Per-party books of a post-churn handshake vs the symbolic model."""
    rng = random.Random(seed)
    framework = GcdFramework.create("bench-guard", gsig_kind="acjt",
                                    gsig_profile="tiny", rng=rng)
    service = RevocationService(framework, register=False)
    for i in range(5):
        service.admit(f"g{i}", rng)
    service.revoke("g3")
    service.revoke("g4")
    service.seal_epoch()
    m = 3
    with metrics.detached():
        outcomes = framework.handshake([f"g{i}" for i in range(m)], rng=rng)
        snap = metrics.snapshot()
    assert all(o.success for o in outcomes)
    # Exact count fields only: the in-process sim transport never frames
    # bytes, so the byte-tolerance clauses of validate_party don't apply.
    predicted = HandshakeModel("1").per_party(m)
    mismatches = []
    for i in range(m):
        c = snap.get(f"hs:{i}")
        if c is None:
            mismatches.append(f"no books for hs:{i}")
            continue
        for name in ("modexp", "messages_sent", "messages_received"):
            measured = getattr(c, name)
            if measured != predicted[name]:
                mismatches.append(
                    f"hs:{i}: {name} measured {measured} != "
                    f"predicted {predicted[name]}")
    return {"m": m, "per_party_predicted": predicted,
            "mismatches": mismatches, "clean": not mismatches}


def test_revocation_churn(benchmark):
    doc = {}

    def run():
        doc["sequential"] = _revocation_books(SEED, batched=False)
        doc["batched"] = _revocation_books(SEED, batched=True)
        doc["k"] = K
        doc["lazy"] = _lazy_leg(SEED + 1)
        doc["guard"] = _handshake_guard(SEED + 2)
        doc["tiers"] = {
            f"1e{exp}": simulate_churn(ChurnSpec(
                members=10 ** exp, epochs=24, revocations_per_epoch=50,
                joins_per_epoch=25, sleepers=10 ** exp // 100, horizon=64,
            ))
            for exp in (4, 5, 6)
        }

    benchmark.pedantic(run, rounds=1, iterations=1)

    seq, bat, lazy = doc["sequential"], doc["batched"], doc["lazy"]

    # The measured books must equal the closed forms EXACTLY.
    assert seq["manager_modexps"] == manager_modexps(K, batched=False) == K
    assert bat["manager_modexps"] == manager_modexps(K, batched=True) == 1
    assert seq["member_modexps"] == member_update_modexps(0, K,
                                                          coalesced=False)
    assert bat["member_modexps"] == member_update_modexps(0, K,
                                                          coalesced=True)
    doc["model_match"] = True

    # The acceptance bars: batched strictly beats sequential on manager
    # modexps; a >=10-epoch lazy refresh costs <=3 modexps and verifies.
    assert bat["manager_modexps"] < seq["manager_modexps"]
    assert bat["witness_valid"] and seq["witness_valid"]
    assert lazy["result"] == "replayed" and lazy["witness_valid"]
    assert lazy["missed_epochs"] >= 10
    assert lazy["member_modexps"] <= 3
    assert lazy["deep_result"] == "reissued" and lazy["deep_witness_valid"]
    assert doc["guard"]["clean"], doc["guard"]["mismatches"]
    for tier in doc["tiers"].values():
        assert (tier["batched"]["total_modexps"]
                < tier["sequential"]["total_modexps"])
    doc["batched_beats_sequential"] = True

    with open(JSON_PATH, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)

    rows = [
        ("manager modexps (k=%d)" % K,
         seq["manager_modexps"], bat["manager_modexps"]),
        ("survivor modexps", seq["member_modexps"], bat["member_modexps"]),
        ("rekey broadcasts", seq["updates_broadcast"],
         bat["updates_broadcast"]),
    ]
    for name, tier in doc["tiers"].items():
        rows.append((f"simulated total modexps @ {name}",
                     tier["sequential"]["total_modexps"],
                     tier["batched"]["total_modexps"]))
    rows.append((f"lazy refresh ({lazy['missed_epochs']} missed epochs)",
                 "-", f"{lazy['member_modexps']} modexps, "
                      f"{lazy['result']}, witness ok"))
    emit(
        "revocation",
        "Revocation: sequential vs batched-epoch witness maintenance "
        "(exact counted modexps)",
        ("cost", "sequential", "batched epoch"),
        rows,
    )
