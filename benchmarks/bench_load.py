"""Open-loop load — sustained arrivals and deliberate overload.

Every other bench here is closed-loop: the next room waits for the last,
so the relay never feels pressure.  This one drives the 2-shard cluster
with ``repro.load``'s open-loop generator — rooms arrive on a seeded
Poisson clock whether or not earlier rooms have finished — and asserts
the capacity-model contract on top of the SLO numbers:

* ``poisson``  — sustained arrivals at a rate this box can absorb: every
  room completes, the driver reports sustained throughput and
  admission/e2e latency percentiles, the relay-side merged
  ``svc:relay-latency`` percentiles ride along from aggregated STATUS,
  and every completed room's books match the symbolic model
  (modexp/message counts **exactly**, bytes within tolerance).
* ``overload`` — the same generator pushed past a deliberately tiny
  admission ceiling (``max_rooms_per_shard=1``): the cluster must shed
  with retryable BUSY frames (nonzero per-reason shed counters in merged
  STATUS), clients must retry or fail *retryably* — zero non-retryable
  casualties, zero hangs — and the books of whatever completed must
  still match the model exactly.

Model-vs-measured count drift fails the bench (and the CI ``load-smoke``
job): the closed forms in ``repro.load.model`` are the repo's executable
statement of the paper's O(m) cost claims.

Artifacts: ``results/load.txt`` (table) and ``BENCH_load.json`` at the
repo root (CI uploads it; see .github/workflows/ci.yml).
"""

import asyncio
import json
import os

from _tables import emit
from repro import metrics
from repro.cluster import ClusterConfig, ClusterRouter
from repro.core.scheme1 import scheme1_policy
from repro.load import LoadConfig, RoomMix, build_report, run_open_loop
from repro.obs.telemetry import StatusSampler
from repro.service import query_status

SHARDS = 2
POISSON_RATE = 1.5          # rooms/s this 1-CPU box sustains with margin
POISSON_DURATION = 8.0
OVERLOAD_RATE = 8.0         # far beyond a 2-room admission ceiling
OVERLOAD_DURATION = 2.0
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_load.json")


async def _leg(members, policy, load, *, max_rooms_per_shard=None):
    """One open-loop run against a fresh 2-shard cluster; returns the
    full SLO/capacity report document (with its sampled timeline
    section — the bench's STATUS sampler runs throughout the leg)."""
    config = ClusterConfig(shards=SHARDS, heartbeat_interval=0.1,
                           handshake_timeout=60.0,
                           max_rooms_per_shard=max_rooms_per_shard)
    async with ClusterRouter(config) as router:
        run_config = LoadConfig(**{**load.__dict__, "port": router.port})
        recorder = metrics.Recorder()
        # Started outside ``using(recorder)``: the sampler's own STATUS
        # queries must not bleed into the driver's books.
        sampler = StatusSampler("127.0.0.1", router.port, interval=0.5,
                                client_recorder=recorder)
        sampler_task = asyncio.ensure_future(sampler.run())
        with metrics.using(recorder):
            results = await run_open_loop(run_config, members, policy)
        await asyncio.sleep(0.4)     # let heartbeats carry the final books
        await sampler.stop(sampler_task)
        status = await query_status("127.0.0.1", router.port)
    timeline = (sampler.series.timeline_doc()
                if len(sampler.series) > 1 else None)
    return build_report(run_config, results, status=status,
                        recorder=recorder, shards=SHARDS,
                        max_rooms_per_shard=max_rooms_per_shard,
                        timeline=timeline)


async def _poisson_leg(members, policy):
    doc = await _leg(members, policy, LoadConfig(
        rate=POISSON_RATE, duration=POISSON_DURATION,
        mix=RoomMix.parse("2:0.8,3:0.2"), seed=2005,
        deadline=20.0, drain_grace=10.0))
    achieved = doc["achieved"]
    assert achieved["completed"] > 0 and achieved["failed"] == 0, achieved
    assert achieved["throughput_rooms_per_s"] > 0
    assert doc["slo"]["load:e2e-latency"]["count"] == achieved["completed"]
    assert doc["model"]["counts_exact"], doc["model"]["mismatches"]
    # The sampled timeline rode along: an 8s leg at 0.5s sampling has
    # real per-interval rates in the report document.
    assert doc.get("timeline") and doc["timeline"]["intervals"]
    return doc


async def _overload_leg(members, policy):
    doc = await _leg(members, policy, LoadConfig(
        rate=OVERLOAD_RATE, duration=OVERLOAD_DURATION,
        mix=RoomMix.single(2), seed=2006,
        deadline=12.0, drain_grace=8.0),
        max_rooms_per_shard=1)
    achieved = doc["achieved"]
    # Admission control, not collapse: sheds happened, nothing died
    # non-retryably, nothing hung (run_open_loop's drain is bounded).
    assert doc["relay"]["shed_total"] > 0, \
        "overload produced no BUSY sheds — ceiling not exercised"
    assert achieved["failed"] == 0, achieved
    assert doc["model"]["counts_exact"], doc["model"]["mismatches"]
    return doc


def _row(leg, doc):
    achieved = doc["achieved"]
    e2e = doc["slo"].get("load:e2e-latency") or {}
    return (
        leg,
        f"{doc['offered']['rate_rooms_per_s']:g}",
        f"{achieved['throughput_rooms_per_s']:g}",
        f"{achieved['completed']}/{achieved['retryable']}",
        f"{e2e.get('p99', 0):.3f}" if e2e.get("count") else "-",
        str(doc["relay"]["shed_total"]),
    )


def test_open_loop_load(benchmark, bench_scheme1):
    members = bench_scheme1.members
    policy = scheme1_policy()
    report = {}

    def run():
        report["poisson"] = asyncio.run(_poisson_leg(members, policy))
        report["overload"] = asyncio.run(_overload_leg(members, policy))

    benchmark.pedantic(run, rounds=1, iterations=1)

    poisson = report["poisson"]
    overload = report["overload"]
    emit(
        "load",
        f"Open-loop load on a {SHARDS}-shard cluster: sustained poisson "
        f"vs overload past max_rooms_per_shard=1 (books model-validated "
        f"per room)",
        ("leg", "offered r/s", "achieved r/s", "done/retry",
         "e2e p99(s)", "sheds"),
        [_row("poisson", poisson), _row("overload", overload)],
    )

    doc = {
        "shards": SHARDS,
        "model_backend": poisson["model"]["backend"],
        "counts_exact": (poisson["model"]["counts_exact"]
                         and overload["model"]["counts_exact"]),
        "poisson": poisson,
        "overload": overload,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
