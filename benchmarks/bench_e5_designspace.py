"""E5 — the Section 3 design-space property matrix.

The paper argues GCD's three-block design by elimination: CGKD-only,
GSIG-only, and CGKD+GSIG each fail at least one property that GCD
provides.  Every cell of this matrix is backed by an executable attack
from :mod:`repro.baselines.naive` / :mod:`repro.security.games` — "yes"
means the property holds (the attack failed), "NO" means the attack
succeeded, and the asserted pattern is exactly the paper's Table of
drawbacks (1)-(3)."""

import random

import pytest

from _tables import emit
from repro.baselines import naive
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy
from repro.security import games


def _strawman_worlds(seed: int):
    rng = random.Random(seed)
    cgkd_only = naive.CgkdOnlyScheme(rng)
    gsig_only = naive.GsigOnlyScheme("tiny", rng)
    combined = naive.CgkdPlusGsigScheme("tiny", rng)
    for scheme in (cgkd_only, gsig_only, combined):
        for name in ("u1", "u2", "u3"):
            scheme.admit(name)
    return cgkd_only, gsig_only, combined, rng


def test_e5_design_space_matrix(benchmark, bench_scheme1, bench_scheme2):
    rows = []

    def run():
        cgkd_only, gsig_only, combined, rng = _strawman_worlds(71)

        # CGKD-only: member-eavesdropper detects; untraceable; multi-role OK.
        t = cgkd_only.handshake(["u1", "u2"], rng)
        spy = cgkd_only.members["u3"].group_key
        cgkd_detect = not naive.CgkdOnlyScheme.attack_member_eavesdropper(t, spy)
        cgkd_trace = False  # no tracing operation exists at all
        cgkd_distinct = not naive.CgkdOnlyScheme.attack_multi_role(cgkd_only, "u1", 3, rng)

        # GSIG-only: outsider detects via the public key; traceable.
        t = gsig_only.handshake(["u1", "u2"], rng)
        gsig_detect = not gsig_only.attack_outsider_detection(t)
        gsig_trace = gsig_only.trace(t) == ["u1", "u2"]
        gsig_distinct = False  # same credential can sign any number of slots

        # CGKD+GSIG: member-eavesdropper still detects; traceable.
        t = combined.handshake(["u1", "u2"], rng)
        spy = combined.cgkd.members["u3"].group_key
        comb_detect = not combined.attack_member_eavesdropper(t, spy)
        comb_trace = combined.trace(t, spy) == ["u1", "u2"]
        comb_distinct = False

        # Full GCD: run the real games.
        w1 = bench_scheme1
        leaked = w1.framework.authority.group_key()
        gcd_detect = games.stolen_key_game(
            w1.members[:2], leaked, 1, w1.rng).wins == 0
        outcome = run_handshake(w1.members[:2], scheme1_policy(), w1.rng)
        gcd_trace = sorted(
            w1.framework.trace(outcome[0].transcript).identified
        ) == ["user-0", "user-1"]
        w2 = bench_scheme2
        gcd_distinct = games.self_distinction_game(
            w2.members[:2], w2.members[2], 2, 1, w2.rng, scheme2_policy()
        ).wins == 0

        def cell(value):
            return "yes" if value else "NO"

        rows.append(("CGKD only", cell(cgkd_detect), cell(cgkd_trace), cell(cgkd_distinct)))
        rows.append(("GSIG only", cell(gsig_detect), cell(gsig_trace), cell(gsig_distinct)))
        rows.append(("CGKD+GSIG", cell(comb_detect), cell(comb_trace), cell(comb_distinct)))
        rows.append(("GCD (scheme 1)", cell(gcd_detect), cell(gcd_trace), "NO (by design)"))
        rows.append(("GCD (scheme 2)", cell(gcd_detect), cell(gcd_trace), cell(gcd_distinct)))

        # The paper's verdicts.
        assert not cgkd_detect and not cgkd_trace and not cgkd_distinct
        assert not gsig_detect and gsig_trace and not gsig_distinct
        assert not comb_detect and comb_trace and not comb_distinct
        assert gcd_detect and gcd_trace and gcd_distinct

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e5_designspace",
        "E5: design-space property matrix (Section 3 drawbacks, executable)",
        ("design", "indist./detection", "traceability", "self-distinction"),
        rows,
    )
