"""E12 — the Appendix-A security games, run empirically (Theorems 1-3).

One row per experiment and instantiation.  The "paper verdict" column is
what Theorems 1-3 predict; the "measured" column is the concrete
adversary's win count.  Rows where the adversary is *supposed* to win
(self-distinction against scheme 1) are part of the reproduction."""

import pytest

from _tables import emit
from repro.core.scheme1 import scheme1_policy
from repro.core.scheme2 import scheme2_policy
from repro.security import games

TRIALS = 2


def test_e12_security_games(benchmark, bench_scheme1, bench_scheme2):
    rows = []

    def record(scheme, result, expected_wins, verdict):
        rows.append((scheme, result.name,
                     f"{result.wins}/{result.trials}", verdict))
        assert result.wins == expected_wins, (scheme, result.name)

    def run():
        w1, w2 = bench_scheme1, bench_scheme2
        honest1, honest2 = w1.members[:2], w2.members[:2]

        record("scheme1",
               games.impersonation_game(honest1, TRIALS, w1.rng),
               0, "secure (Thm 1)")
        record("scheme1",
               games.impersonation_game(honest1, TRIALS, w1.rng, roles=2),
               0, "secure even multi-role (Thm 1)")
        record("scheme1",
               games.stolen_key_game(honest1, w1.framework.authority.group_key(),
                                     TRIALS, w1.rng),
               0, "CGKD key alone insufficient")
        record("scheme1",
               games.traceability_game(w1.framework, w1.members[:3],
                                       TRIALS, w1.rng),
               0, "traceable (Thm 1)")
        record("scheme1",
               games.misattribution_game(w1.framework, honest1, w1.members[2],
                                         TRIALS, w1.rng),
               0, "no-misattribution (Thm 1)")
        record("scheme1",
               games.credential_reuse_unlinkability(w1.framework, w1.members[0],
                                                    w1.members[1], 3, w1.rng),
               0, "unlinkable with reusable credentials (Thm 1)")
        full1 = games.full_unlinkability_game(
            w1.framework, w1.members[0], w1.members[2], w1.members[1],
            6, w1.rng,
        )
        rows.append(("scheme1", full1.name, f"{full1.wins}/{full1.trials}",
                     "full-unlinkability even after corruption (Thm 1)"))
        full2 = games.full_unlinkability_game(
            w2.framework, w2.members[0], w2.members[2], w2.members[1],
            6, w2.rng, policy=scheme2_policy(),
        )
        rows.append(("scheme2", full2.name, f"{full2.wins}/{full2.trials}",
                     "NOT claimed by Thm 3 — corrupted x links via T4=T5^x"))
        # Scheme 2's corrupted adversary detects every target session, so
        # it wins whenever bit=0 and guesses otherwise: >= half the trials.
        assert full2.wins >= full2.trials // 2

        record("scheme2",
               games.impersonation_game(honest2, TRIALS, w2.rng,
                                        policy=scheme2_policy()),
               0, "secure (Thm 3)")
        record("scheme2",
               games.credential_reuse_unlinkability(
                   w2.framework, w2.members[0], w2.members[1], 3, w2.rng,
                   policy=scheme2_policy()),
               0, "unlinkable across sessions (Thm 3)")
        record("scheme2",
               games.self_distinction_game(honest2, w2.members[2], 2, TRIALS,
                                           w2.rng, scheme2_policy()),
               0, "self-distinction (Thm 3)")
        result = games.self_distinction_game(honest1, w1.members[2], 2, TRIALS,
                                             w1.rng, scheme1_policy())
        rows.append(("scheme1", result.name,
                     f"{result.wins}/{result.trials}",
                     "NOT claimed by Thm 1 — rogue wins, as the paper says"))
        assert result.wins == result.trials

    benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "e12_games",
        "E12: Appendix-A experiments, adversary wins (0 = property holds)",
        ("instantiation", "experiment", "adversary wins", "paper verdict"),
        rows,
    )
