"""Accel sweep — baseline vs fixed-base precompute vs batch vs pool.

Four configurations of the same seeded handshake, m ∈ {2, 4, 8}:

* ``baseline``   — accel disabled: plain ``pow`` everywhere, inline.
* ``precompute`` — accel enabled, batching off: fixed-base tables only,
  inline on one core.
* ``batched``    — accel enabled with room-scale batch verification
  (:mod:`repro.accel.batch`): one ScanCache deduplicates the Phase III
  decrypt/verify scan across parties, still inline on one core.
* ``pooled``     — accel + batching *and* Phase III fanned out over the
  :mod:`repro.accel.pool` worker processes (scans ship as one chunk per
  worker).

The **counter-parity guard** is the heart of the benchmark and is always
asserted, on any machine: all four configurations must produce
bit-identical session keys and transcripts and identical per-party E1
(modexp) / E2 (message) counts — acceleration that changes the books is
a bug, not a speedup.  The ≥1.5× pooled-vs-inline wall-clock bar for
m=8 is asserted only on a multi-core runner (a single-core container
cannot parallelise anything); the JSON artifact records whether the bar
was enforced via ``speedup_asserted``.

The **batched verify scan** leg isolates the m=8 Phase III verification
matrix (every member checks every other member's signature) and times it
sequential vs batched.  Its ≥1.3× bar is asserted *unconditionally*:
the win is algebraic (8·7 verifications collapse to 8 distinct ones),
not a function of core count, and the verdict matrices must be
identical.

Artifacts: ``results/accel_sweep.txt`` (table) and ``BENCH_accel.json``
at the repo root (CI uploads it; see .github/workflows/ci.yml).
"""

import json
import os
import random
import time

from _tables import emit
from repro import accel, metrics
from repro.accel import batch
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy

SWEEP = (2, 4, 8)
SEED = 52000
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_accel.json")
SPEEDUP_BAR = 1.5
SCAN_SPEEDUP_BAR = 1.3


def _seeded_rngs(m):
    return [random.Random(SEED + i) for i in range(m)]


def _run_once(members, pool):
    rec = metrics.Recorder()
    with metrics.using(rec):
        started = time.perf_counter()
        outcomes = run_handshake(members, scheme1_policy(),
                                 rngs=_seeded_rngs(len(members)), pool=pool)
        wall = time.perf_counter() - started
    assert all(o.success for o in outcomes)
    return outcomes, rec.snapshot(), wall


def _fingerprint(outcomes, snapshot):
    """Everything the parity guard compares: protocol outputs plus the
    guarded per-party books (E1 modexps, E2 messages, hashes)."""
    books = []
    for i in range(len(outcomes)):
        c = snapshot[f"hs:{i}"]
        books.append((c.modexp, c.messages_sent, c.messages_received,
                      c.hashes))
    return (
        tuple(o.session_key for o in outcomes),
        tuple(tuple(o.transcript.entries) for o in outcomes),
        tuple(books),
    )


def _mode_run(members, mode):
    if mode == "baseline":
        accel.configure(enabled=False)
        return _run_once(members, pool=None)
    if mode == "precompute":
        accel.configure(enabled=True, batch=False)
        return _run_once(members, pool=None)
    accel.configure(enabled=True, batch=True)
    if mode == "batched":
        return _run_once(members, pool=None)
    return _run_once(members, pool=accel.get_pool())


def _scan_items(members):
    """One signed publication per member, as the Phase III scan sees it."""
    rng = random.Random(SEED + 700)
    items = []
    for i, member in enumerate(members):
        message = f"scan:{i}".encode()
        items.append((message, member.gsig_sign(message, rng)))
    return items


def _batched_scan_leg(members):
    """Time the m-party verify matrix sequential vs batched (one core).

    Both legs run with accel enabled so fixed-base tables are identical;
    the only difference is the room-scale ScanCache."""
    accel.configure(enabled=True, batch=True)
    items = _scan_items(members)
    batch.verify_room(members, items)            # warm the tables

    started = time.perf_counter()
    sequential = batch.verify_room(members, items)
    wall_sequential = time.perf_counter() - started

    started = time.perf_counter()
    batched = batch.verify_room(members, items, cache=batch.ScanCache())
    wall_batched = time.perf_counter() - started

    assert batched == sequential, "batched scan changed a verdict"
    assert all(v is True for i, row in enumerate(sequential)
               for j, v in enumerate(row) if i != j)
    return wall_sequential, wall_batched


def test_accel_sweep(benchmark, bench_scheme1):
    modes = ("baseline", "precompute", "batched", "pooled")
    results = {}
    scan_walls = {}
    try:
        # Warm-up outside the timed region: fixed-base tables build on
        # first use and the process pool forks lazily — one-time costs
        # that would otherwise be billed to whichever mode runs first.
        accel.configure(enabled=True, batch=True)
        warm = bench_scheme1.members[:2]
        _run_once(warm, pool=None)
        _run_once(warm, pool=accel.get_pool())

        def run():
            for m in SWEEP:
                members = bench_scheme1.members[:m]
                results[m] = {mode: _mode_run(members, mode)
                              for mode in modes}
            scan_walls["sequential"], scan_walls["batched"] = \
                _batched_scan_leg(bench_scheme1.members[:8])

        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        accel.shutdown_pool()
        accel.configure(enabled=False, batch=True)

    # Counter-parity guard (always on): identical outputs and books.
    for m in SWEEP:
        prints = {mode: _fingerprint(outcomes, snap)
                  for mode, (outcomes, snap, _) in results[m].items()}
        for mode in modes[1:]:
            assert prints["baseline"] == prints[mode], \
                f"m={m}: {mode} changed outputs or counters"

    cpus = os.cpu_count() or 1
    walls = {m: {mode: results[m][mode][2] for mode in modes} for m in SWEEP}
    speedup_m8 = walls[8]["precompute"] / walls[8]["pooled"]
    speedup_asserted = cpus >= 2
    if speedup_asserted:
        assert speedup_m8 >= SPEEDUP_BAR, (
            f"pooled m=8 handshake only {speedup_m8:.2f}x faster than "
            f"inline on {cpus} cores (bar: {SPEEDUP_BAR}x)")

    # The batched-scan bar holds on any machine: the saving is algebraic.
    scan_speedup_m8 = scan_walls["sequential"] / scan_walls["batched"]
    assert scan_speedup_m8 >= SCAN_SPEEDUP_BAR, (
        f"batched m=8 verify scan only {scan_speedup_m8:.2f}x faster than "
        f"sequential (bar: {SCAN_SPEEDUP_BAR}x)")

    rows = []
    for m in SWEEP:
        snap = results[m]["pooled"][1]
        e1 = snap["hs:0"].modexp
        rows.append((
            m, e1,
            f"{walls[m]['baseline']:.3f}",
            f"{walls[m]['precompute']:.3f}",
            f"{walls[m]['batched']:.3f}",
            f"{walls[m]['pooled']:.3f}",
            f"{walls[m]['precompute'] / walls[m]['pooled']:.2f}x",
        ))
    emit(
        "accel_sweep",
        f"Accel: baseline vs precompute vs batched vs pooled ({cpus} CPUs; "
        f"counters bit-identical across all modes; m=8 scan "
        f"{scan_speedup_m8:.2f}x batched)",
        ("m", "E1/party", "base(s)", "pre(s)", "batch(s)", "pool(s)",
         "pool-speedup"),
        rows,
    )

    doc = {
        "cpus": cpus,
        "sweep": [
            {
                "m": m,
                "wall_baseline_s": round(walls[m]["baseline"], 6),
                "wall_precompute_s": round(walls[m]["precompute"], 6),
                "wall_batched_s": round(walls[m]["batched"], 6),
                "wall_pooled_s": round(walls[m]["pooled"], 6),
                "modexp_per_party": results[m]["pooled"][1]["hs:0"].modexp,
                "pool_tasks": results[m]["pooled"][1]["total"].extra.get(
                    "accel:pool-tasks", 0),
                "batch_chunks": results[m]["pooled"][1]["total"].extra.get(
                    "accel:batch-chunks", 0),
                "batch_scan_hits": results[m]["batched"][1]["total"].extra.get(
                    "accel:batch-scan-hit", 0),
                "fb_hits": results[m]["pooled"][1]["total"].extra.get(
                    "accel:fb-hit", 0),
            }
            for m in SWEEP
        ],
        "counter_parity": "ok",
        "speedup_pooled_vs_inline_m8": round(speedup_m8, 4),
        "speedup_bar": SPEEDUP_BAR,
        "speedup_asserted": speedup_asserted,
        "scan_wall_sequential_m8_s": round(scan_walls["sequential"], 6),
        "scan_wall_batched_m8_s": round(scan_walls["batched"], 6),
        "speedup_batched_scan_m8": round(scan_speedup_m8, 4),
        "scan_speedup_bar": SCAN_SPEEDUP_BAR,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
