"""Accel sweep — baseline vs fixed-base precompute vs process pool.

Three configurations of the same seeded handshake, m ∈ {2, 4, 8}:

* ``baseline``   — accel disabled: plain ``pow`` everywhere, inline.
* ``precompute`` — accel enabled: fixed-base tables + Shamir/Straus
  multi-exp, still inline on one core.
* ``pooled``     — accel enabled *and* Phase III fanned out over the
  :mod:`repro.accel.pool` worker processes.

The **counter-parity guard** is the heart of the benchmark and is always
asserted, on any machine: all three configurations must produce
bit-identical session keys and transcripts and identical per-party E1
(modexp) / E2 (message) counts — acceleration that changes the books is
a bug, not a speedup.  The ≥1.5× pooled-vs-inline wall-clock bar for
m=8 is asserted only on a multi-core runner (a single-core container
cannot parallelise anything); the JSON artifact records whether the bar
was enforced via ``speedup_asserted``.

Artifacts: ``results/accel_sweep.txt`` (table) and ``BENCH_accel.json``
at the repo root (CI uploads it; see .github/workflows/ci.yml).
"""

import json
import os
import random
import time

from _tables import emit
from repro import accel, metrics
from repro.core.handshake import run_handshake
from repro.core.scheme1 import scheme1_policy

SWEEP = (2, 4, 8)
SEED = 52000
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_accel.json")
SPEEDUP_BAR = 1.5


def _seeded_rngs(m):
    return [random.Random(SEED + i) for i in range(m)]


def _run_once(members, pool):
    rec = metrics.Recorder()
    with metrics.using(rec):
        started = time.perf_counter()
        outcomes = run_handshake(members, scheme1_policy(),
                                 rngs=_seeded_rngs(len(members)), pool=pool)
        wall = time.perf_counter() - started
    assert all(o.success for o in outcomes)
    return outcomes, rec.snapshot(), wall


def _fingerprint(outcomes, snapshot):
    """Everything the parity guard compares: protocol outputs plus the
    guarded per-party books (E1 modexps, E2 messages, hashes)."""
    books = []
    for i in range(len(outcomes)):
        c = snapshot[f"hs:{i}"]
        books.append((c.modexp, c.messages_sent, c.messages_received,
                      c.hashes))
    return (
        tuple(o.session_key for o in outcomes),
        tuple(tuple(o.transcript.entries) for o in outcomes),
        tuple(books),
    )


def _mode_run(members, mode):
    if mode == "baseline":
        accel.disable()
        return _run_once(members, pool=None)
    accel.enable()
    if mode == "precompute":
        return _run_once(members, pool=None)
    return _run_once(members, pool=accel.get_pool())


def test_accel_sweep(benchmark, bench_scheme1):
    modes = ("baseline", "precompute", "pooled")
    results = {}
    try:
        # Warm-up outside the timed region: fixed-base tables build on
        # first use and the process pool forks lazily — one-time costs
        # that would otherwise be billed to whichever mode runs first.
        accel.enable()
        warm = bench_scheme1.members[:2]
        _run_once(warm, pool=None)
        _run_once(warm, pool=accel.get_pool())

        def run():
            for m in SWEEP:
                members = bench_scheme1.members[:m]
                results[m] = {mode: _mode_run(members, mode)
                              for mode in modes}

        benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        accel.shutdown_pool()
        accel.disable()

    # Counter-parity guard (always on): identical outputs and books.
    for m in SWEEP:
        prints = {mode: _fingerprint(outcomes, snap)
                  for mode, (outcomes, snap, _) in results[m].items()}
        assert prints["baseline"] == prints["precompute"], \
            f"m={m}: precompute changed outputs or counters"
        assert prints["baseline"] == prints["pooled"], \
            f"m={m}: pool changed outputs or counters"

    cpus = os.cpu_count() or 1
    walls = {m: {mode: results[m][mode][2] for mode in modes} for m in SWEEP}
    speedup_m8 = walls[8]["precompute"] / walls[8]["pooled"]
    speedup_asserted = cpus >= 2
    if speedup_asserted:
        assert speedup_m8 >= SPEEDUP_BAR, (
            f"pooled m=8 handshake only {speedup_m8:.2f}x faster than "
            f"inline on {cpus} cores (bar: {SPEEDUP_BAR}x)")

    rows = []
    for m in SWEEP:
        snap = results[m]["pooled"][1]
        e1 = snap["hs:0"].modexp
        rows.append((
            m, e1,
            f"{walls[m]['baseline']:.3f}",
            f"{walls[m]['precompute']:.3f}",
            f"{walls[m]['pooled']:.3f}",
            f"{walls[m]['precompute'] / walls[m]['pooled']:.2f}x",
        ))
    emit(
        "accel_sweep",
        f"Accel: baseline vs precompute vs pooled ({cpus} CPUs; "
        f"counters bit-identical across all modes)",
        ("m", "E1/party", "base(s)", "pre(s)", "pool(s)", "pool-speedup"),
        rows,
    )

    doc = {
        "cpus": cpus,
        "sweep": [
            {
                "m": m,
                "wall_baseline_s": round(walls[m]["baseline"], 6),
                "wall_precompute_s": round(walls[m]["precompute"], 6),
                "wall_pooled_s": round(walls[m]["pooled"], 6),
                "modexp_per_party": results[m]["pooled"][1]["hs:0"].modexp,
                "pool_tasks": results[m]["pooled"][1]["total"].extra.get(
                    "accel:pool-tasks", 0),
                "fb_hits": results[m]["pooled"][1]["total"].extra.get(
                    "accel:fb-hit", 0),
            }
            for m in SWEEP
        ],
        "counter_parity": "ok",
        "speedup_pooled_vs_inline_m8": round(speedup_m8, 4),
        "speedup_bar": SPEEDUP_BAR,
        "speedup_asserted": speedup_asserted,
    }
    with open(JSON_PATH, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
